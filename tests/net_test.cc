// Network protocol and client/server tests (§5): framing, batched ops over
// loopback TCP, multiple workers and connections.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "kvstore/store.h"
#include "net/client.h"
#include "net/proto.h"
#include "net/server.h"

namespace masstree {
namespace {

TEST(Proto, FrameRoundTrip) {
  std::string body = "hello frame";
  std::string framed = body;
  netwire::frame(&framed);
  EXPECT_EQ(framed.size(), body.size() + 4);
  size_t consumed = 0;
  auto got = netwire::try_frame(framed, &consumed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
  EXPECT_EQ(consumed, framed.size());
}

TEST(Proto, PartialFrameReturnsNothing) {
  std::string body = "0123456789";
  std::string framed = body;
  netwire::frame(&framed);
  size_t consumed = 0;
  EXPECT_FALSE(netwire::try_frame(std::string_view(framed).substr(0, 3), &consumed));
  EXPECT_FALSE(
      netwire::try_frame(std::string_view(framed).substr(0, framed.size() - 1), &consumed));
}

TEST(Proto, ReaderBoundsChecked) {
  std::string buf = "\x01\x02";
  netwire::Reader r(buf);
  uint8_t a;
  EXPECT_TRUE(r.read(&a));
  uint32_t too_big;
  EXPECT_FALSE(r.read(&too_big));
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(store_, Server::Options{0, 2});
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  Store store_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetTest, PingPong) {
  Client c(server_->port());
  c.ping();
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
}

TEST_F(NetTest, PutGetRemove) {
  Client c(server_->port());
  c.put("alpha", {{0, "one"}, {1, "two"}});
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(res[0].inserted);

  c.get("alpha");
  c.get("alpha", {1});
  c.get("missing");
  res = c.flush();
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].columns.size(), 2u);
  EXPECT_EQ(res[0].columns[0], "one");
  EXPECT_EQ(res[0].columns[1], "two");
  ASSERT_EQ(res[1].columns.size(), 1u);
  EXPECT_EQ(res[1].columns[0], "two");
  EXPECT_EQ(res[2].status, NetStatus::kNotFound);

  c.remove("alpha");
  c.remove("alpha");
  res = c.flush();
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_EQ(res[1].status, NetStatus::kNotFound);
}

TEST_F(NetTest, BatchedQueries) {
  // "A single client message can include many queries" (§3).
  Client c(server_->port());
  for (int i = 0; i < 500; ++i) {
    c.put("batch" + std::to_string(i), {{0, "v" + std::to_string(i)}});
  }
  auto res = c.flush();
  ASSERT_EQ(res.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    c.get("batch" + std::to_string(i));
  }
  res = c.flush();
  ASSERT_EQ(res.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(res[i].status, NetStatus::kOk) << i;
    ASSERT_EQ(res[i].columns[0], "v" + std::to_string(i));
  }
}

TEST_F(NetTest, ScanOverNetwork) {
  Client c(server_->port());
  for (int i = 0; i < 40; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "s%03d", i);
    c.put(buf, {{0, "a" + std::to_string(i)}, {1, "b" + std::to_string(i)}});
  }
  c.flush();
  c.scan("s010", 5, 1);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].scan_items.size(), 5u);
  EXPECT_EQ(res[0].scan_items[0].first, "s010");
  EXPECT_EQ(res[0].scan_items[0].second, "b10");
  EXPECT_EQ(res[0].scan_items[4].first, "s014");
}

TEST_F(NetTest, ScanLimitZeroAndMissingStart) {
  Client c(server_->port());
  for (int i = 0; i < 20; ++i) {
    c.put("zs" + std::to_string(100 + i), {{0, std::to_string(i)}});
  }
  c.flush();

  c.scan("zs100", 0, 0);   // limit 0: ok, empty
  c.scan("zs1105", 3, 0);  // non-existent start: next keys at or after it
  c.scan("zzz-none", 5, 0);  // start past every key: ok, empty
  auto res = c.flush();
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_TRUE(res[0].scan_items.empty());
  EXPECT_EQ(res[1].status, NetStatus::kOk);
  ASSERT_EQ(res[1].scan_items.size(), 3u);
  EXPECT_EQ(res[1].scan_items[0].first, "zs111");  // first key after "zs1105"
  EXPECT_EQ(res[2].status, NetStatus::kOk);
  EXPECT_TRUE(res[2].scan_items.empty());
}

// Sends one already-framed request body over a fresh connection and returns
// the response body — for wire cases the Client's own guards refuse to
// encode.
std::string RawRoundTrip(uint16_t port, std::string body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  netwire::frame(&body);
  size_t off = 0;
  while (off < body.size()) {
    ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n <= 0) {
      ADD_FAILURE() << "raw write failed";
      ::close(fd);
      return std::string();
    }
    off += static_cast<size_t>(n);
  }
  std::string in;
  for (;;) {
    size_t consumed = 0;
    auto resp = netwire::try_frame(in, &consumed);
    if (resp) {
      std::string out(*resp);
      ::close(fd);
      return out;
    }
    char buf[4096];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      ::close(fd);
      return std::string();
    }
    in.append(buf, static_cast<size_t>(n));
  }
}

TEST_F(NetTest, ScanOverLimitRejected) {
  Client c(server_->port());
  c.put("rl-key", {{0, "v"}});
  c.flush();

  // The client-side guard refuses to waste the round trip.
  EXPECT_THROW(c.scan("rl-key", kMaxScanLimit + 1, 0), std::length_error);

  // On the wire, the server rejects with kRejected and the rest of the frame
  // stays decodable (the scan op carries no payload when rejected).
  std::string body;
  netwire::encode_scan(&body, "rl-key", static_cast<uint32_t>(kMaxScanLimit) + 1, 0);
  netwire::encode_ping(&body);
  std::string resp = RawRoundTrip(server_->port(), std::move(body));
  ASSERT_EQ(resp.size(), 2u);  // u8 rejected | u8 ping ok
  EXPECT_EQ(static_cast<NetStatus>(resp[0]), NetStatus::kRejected);
  EXPECT_EQ(static_cast<NetStatus>(resp[1]), NetStatus::kOk);

  // Exactly at the cap is accepted (and returns what exists).
  c.scan("rl-key", static_cast<uint32_t>(kMaxScanLimit), 0);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].scan_items.size(), 1u);
  EXPECT_EQ(res[0].scan_items[0].first, "rl-key");
}

TEST_F(NetTest, ScanCrossesBorderSplits) {
  // Enough keys that the range spans many split-produced border nodes; the
  // server streams the whole range from one cursor in one response.
  Client c(server_->port());
  constexpr int kKeys = 600;
  for (int i = 0; i < kKeys; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "w%05d", i);
    c.put(buf, {{0, std::to_string(i)}});
    if (c.pending() == 128) {
      c.flush();
    }
  }
  c.flush();

  c.scan("w", kKeys + 50, 0);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].scan_items.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "w%05d", i);
    ASSERT_EQ(res[0].scan_items[i].first, buf) << i;
    ASSERT_EQ(res[0].scan_items[i].second, std::to_string(i)) << i;
  }

  // A window strictly inside the range, starting between two keys.
  c.scan("w00123a", 10, 0);
  res = c.flush();
  ASSERT_EQ(res[0].scan_items.size(), 10u);
  EXPECT_EQ(res[0].scan_items[0].first, "w00124");
  EXPECT_EQ(res[0].scan_items[9].first, "w00133");
}

TEST_F(NetTest, MultiGetRoundTrip) {
  Client c(server_->port());
  for (int i = 0; i < 30; ++i) {
    c.put("mg" + std::to_string(i),
          {{0, "a" + std::to_string(i)}, {1, "b" + std::to_string(i)}});
  }
  c.flush();

  // Mixed hits and misses, all columns: one op, one round trip.
  std::vector<std::string> keys;
  for (int i = 0; i < 40; ++i) {  // 30..39 are partial misses
    keys.push_back("mg" + std::to_string(i));
  }
  std::vector<std::string_view> views(keys.begin(), keys.end());
  c.multiget(views);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    if (i < 30) {
      ASSERT_TRUE(res[0].batch[i].found) << i;
      ASSERT_EQ(res[0].batch[i].columns.size(), 2u) << i;
      EXPECT_EQ(res[0].batch[i].columns[0], "a" + std::to_string(i));
      EXPECT_EQ(res[0].batch[i].columns[1], "b" + std::to_string(i));
    } else {
      EXPECT_FALSE(res[0].batch[i].found) << i;
      EXPECT_TRUE(res[0].batch[i].columns.empty()) << i;
    }
  }

  // Column selection applies to every key in the batch.
  c.multiget(views, {1});
  res = c.flush();
  ASSERT_EQ(res[0].batch.size(), 40u);
  ASSERT_EQ(res[0].batch[7].columns.size(), 1u);
  EXPECT_EQ(res[0].batch[7].columns[0], "b7");
}

TEST_F(NetTest, MultiGetEmptyBatch) {
  Client c(server_->port());
  c.multiget({});
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_TRUE(res[0].batch.empty());
}

TEST_F(NetTest, MultiGetOversizedBatchRejected) {
  Client c(server_->port());
  c.put("present", {{0, "v"}});
  c.flush();

  std::vector<std::string> keys(kMaxMultigetBatch + 1, "present");
  std::vector<std::string_view> views(keys.begin(), keys.end());
  c.multiget(views);
  c.ping();  // the frame must stay decodable past the rejected op
  auto res = c.flush();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].status, NetStatus::kRejected);
  EXPECT_TRUE(res[0].batch.empty());
  EXPECT_EQ(res[1].status, NetStatus::kOk);

  // Exactly at the cap is accepted.
  views.pop_back();
  c.multiget(views);
  res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), kMaxMultigetBatch);
  EXPECT_TRUE(res[0].batch.front().found);
  EXPECT_TRUE(res[0].batch.back().found);

  // Beyond the wire's u16 count the server could not even parse the batch to
  // reject it, so the client refuses to encode it.
  std::vector<std::string_view> huge(0x10000, "present");
  EXPECT_THROW(c.multiget(huge), std::length_error);
}

TEST_F(NetTest, ManyClientsConcurrently) {
  constexpr int kClients = 6, kOps = 300;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c(server_->port());
      for (int i = 0; i < kOps; ++i) {
        c.put("cli" + std::to_string(t) + "-" + std::to_string(i),
              {{0, std::to_string(i)}});
      }
      c.flush();
      for (int i = 0; i < kOps; ++i) {
        c.get("cli" + std::to_string(t) + "-" + std::to_string(i));
      }
      auto res = c.flush();
      for (int i = 0; i < kOps; ++i) {
        if (res[i].status != NetStatus::kOk || res[i].columns[0] != std::to_string(i)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GE(server_->ops_served(), static_cast<uint64_t>(kClients) * kOps * 2);
}

TEST_F(NetTest, SplitFramesAcrossWrites) {
  // A frame delivered byte-by-byte must still parse.
  Client probe(server_->port());  // establishes that server is up
  probe.ping();
  probe.flush();

  // Hand-roll a connection that dribbles bytes.
  Client c(server_->port());
  c.put("dribble", {{0, "x"}});
  auto res = c.flush();
  EXPECT_TRUE(res[0].inserted);
}

}  // namespace
}  // namespace masstree
