// Network protocol and client/server tests (§5, §6.1): framing, batched ops
// over loopback TCP, multiple workers and connections, and a hostile-network
// suite against the event-loop server's incremental decoder — dribbled
// frames, every split offset, pipelined bursts, garbage and oversized
// headers, and mid-request disconnects.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/store.h"
#include "net/client.h"
#include "net/framing.h"
#include "net/proto.h"
#include "net/server.h"

namespace masstree {
namespace {

TEST(Proto, FrameRoundTrip) {
  std::string body = "hello frame";
  std::string framed = body;
  netwire::frame(&framed);
  EXPECT_EQ(framed.size(), body.size() + 4);
  size_t consumed = 0;
  auto got = netwire::try_frame(framed, &consumed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
  EXPECT_EQ(consumed, framed.size());
}

TEST(Proto, PartialFrameReturnsNothing) {
  std::string body = "0123456789";
  std::string framed = body;
  netwire::frame(&framed);
  size_t consumed = 0;
  EXPECT_FALSE(netwire::try_frame(std::string_view(framed).substr(0, 3), &consumed));
  EXPECT_FALSE(
      netwire::try_frame(std::string_view(framed).substr(0, framed.size() - 1), &consumed));
}

TEST(Proto, ReaderBoundsChecked) {
  std::string buf = "\x01\x02";
  netwire::Reader r(buf);
  uint8_t a;
  EXPECT_TRUE(r.read(&a));
  uint32_t too_big;
  EXPECT_FALSE(r.read(&too_big));
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(store_, Server::Options{0, 2});
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  Store store_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetTest, PingPong) {
  Client c(server_->port());
  c.ping();
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
}

TEST_F(NetTest, PutGetRemove) {
  Client c(server_->port());
  c.put("alpha", {{0, "one"}, {1, "two"}});
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(res[0].inserted);

  c.get("alpha");
  c.get("alpha", {1});
  c.get("missing");
  res = c.flush();
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].columns.size(), 2u);
  EXPECT_EQ(res[0].columns[0], "one");
  EXPECT_EQ(res[0].columns[1], "two");
  ASSERT_EQ(res[1].columns.size(), 1u);
  EXPECT_EQ(res[1].columns[0], "two");
  EXPECT_EQ(res[2].status, NetStatus::kNotFound);

  c.remove("alpha");
  c.remove("alpha");
  res = c.flush();
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_EQ(res[1].status, NetStatus::kNotFound);
}

TEST_F(NetTest, BatchedQueries) {
  // "A single client message can include many queries" (§3).
  Client c(server_->port());
  for (int i = 0; i < 500; ++i) {
    c.put("batch" + std::to_string(i), {{0, "v" + std::to_string(i)}});
  }
  auto res = c.flush();
  ASSERT_EQ(res.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    c.get("batch" + std::to_string(i));
  }
  res = c.flush();
  ASSERT_EQ(res.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(res[i].status, NetStatus::kOk) << i;
    ASSERT_EQ(res[i].columns[0], "v" + std::to_string(i));
  }
}

TEST_F(NetTest, ScanOverNetwork) {
  Client c(server_->port());
  for (int i = 0; i < 40; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "s%03d", i);
    c.put(buf, {{0, "a" + std::to_string(i)}, {1, "b" + std::to_string(i)}});
  }
  c.flush();
  c.scan("s010", 5, 1);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].scan_items.size(), 5u);
  EXPECT_EQ(res[0].scan_items[0].first, "s010");
  EXPECT_EQ(res[0].scan_items[0].second, "b10");
  EXPECT_EQ(res[0].scan_items[4].first, "s014");
}

TEST_F(NetTest, ScanLimitZeroAndMissingStart) {
  Client c(server_->port());
  for (int i = 0; i < 20; ++i) {
    c.put("zs" + std::to_string(100 + i), {{0, std::to_string(i)}});
  }
  c.flush();

  c.scan("zs100", 0, 0);   // limit 0: ok, empty
  c.scan("zs1105", 3, 0);  // non-existent start: next keys at or after it
  c.scan("zzz-none", 5, 0);  // start past every key: ok, empty
  auto res = c.flush();
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_TRUE(res[0].scan_items.empty());
  EXPECT_EQ(res[1].status, NetStatus::kOk);
  ASSERT_EQ(res[1].scan_items.size(), 3u);
  EXPECT_EQ(res[1].scan_items[0].first, "zs111");  // first key after "zs1105"
  EXPECT_EQ(res[2].status, NetStatus::kOk);
  EXPECT_TRUE(res[2].scan_items.empty());
}

// Sends one already-framed request body over a fresh connection and returns
// the response body — for wire cases the Client's own guards refuse to
// encode.
std::string RawRoundTrip(uint16_t port, std::string body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  netwire::frame(&body);
  size_t off = 0;
  while (off < body.size()) {
    ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n <= 0) {
      ADD_FAILURE() << "raw write failed";
      ::close(fd);
      return std::string();
    }
    off += static_cast<size_t>(n);
  }
  std::string in;
  for (;;) {
    size_t consumed = 0;
    auto resp = netwire::try_frame(in, &consumed);
    if (resp) {
      std::string out(*resp);
      ::close(fd);
      return out;
    }
    char buf[4096];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      ::close(fd);
      return std::string();
    }
    in.append(buf, static_cast<size_t>(n));
  }
}

TEST_F(NetTest, ScanOverLimitRejected) {
  Client c(server_->port());
  c.put("rl-key", {{0, "v"}});
  c.flush();

  // The client-side guard refuses to waste the round trip.
  EXPECT_THROW(c.scan("rl-key", kMaxScanLimit + 1, 0), std::length_error);

  // On the wire, the server rejects with kRejected and the rest of the frame
  // stays decodable (the scan op carries no payload when rejected).
  std::string body;
  netwire::encode_scan(&body, "rl-key", static_cast<uint32_t>(kMaxScanLimit) + 1, 0);
  netwire::encode_ping(&body);
  std::string resp = RawRoundTrip(server_->port(), std::move(body));
  ASSERT_EQ(resp.size(), 2u);  // u8 rejected | u8 ping ok
  EXPECT_EQ(static_cast<NetStatus>(resp[0]), NetStatus::kRejected);
  EXPECT_EQ(static_cast<NetStatus>(resp[1]), NetStatus::kOk);

  // Exactly at the cap is accepted (and returns what exists).
  c.scan("rl-key", static_cast<uint32_t>(kMaxScanLimit), 0);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].scan_items.size(), 1u);
  EXPECT_EQ(res[0].scan_items[0].first, "rl-key");
}

TEST_F(NetTest, ScanCrossesBorderSplits) {
  // Enough keys that the range spans many split-produced border nodes; the
  // server streams the whole range from one cursor in one response.
  Client c(server_->port());
  constexpr int kKeys = 600;
  for (int i = 0; i < kKeys; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "w%05d", i);
    c.put(buf, {{0, std::to_string(i)}});
    if (c.pending() == 128) {
      c.flush();
    }
  }
  c.flush();

  c.scan("w", kKeys + 50, 0);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].scan_items.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "w%05d", i);
    ASSERT_EQ(res[0].scan_items[i].first, buf) << i;
    ASSERT_EQ(res[0].scan_items[i].second, std::to_string(i)) << i;
  }

  // A window strictly inside the range, starting between two keys.
  c.scan("w00123a", 10, 0);
  res = c.flush();
  ASSERT_EQ(res[0].scan_items.size(), 10u);
  EXPECT_EQ(res[0].scan_items[0].first, "w00124");
  EXPECT_EQ(res[0].scan_items[9].first, "w00133");
}

TEST_F(NetTest, MultiGetRoundTrip) {
  Client c(server_->port());
  for (int i = 0; i < 30; ++i) {
    c.put("mg" + std::to_string(i),
          {{0, "a" + std::to_string(i)}, {1, "b" + std::to_string(i)}});
  }
  c.flush();

  // Mixed hits and misses, all columns: one op, one round trip.
  std::vector<std::string> keys;
  for (int i = 0; i < 40; ++i) {  // 30..39 are partial misses
    keys.push_back("mg" + std::to_string(i));
  }
  std::vector<std::string_view> views(keys.begin(), keys.end());
  c.multiget(views);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    if (i < 30) {
      ASSERT_TRUE(res[0].batch[i].found) << i;
      ASSERT_EQ(res[0].batch[i].columns.size(), 2u) << i;
      EXPECT_EQ(res[0].batch[i].columns[0], "a" + std::to_string(i));
      EXPECT_EQ(res[0].batch[i].columns[1], "b" + std::to_string(i));
    } else {
      EXPECT_FALSE(res[0].batch[i].found) << i;
      EXPECT_TRUE(res[0].batch[i].columns.empty()) << i;
    }
  }

  // Column selection applies to every key in the batch.
  c.multiget(views, {1});
  res = c.flush();
  ASSERT_EQ(res[0].batch.size(), 40u);
  ASSERT_EQ(res[0].batch[7].columns.size(), 1u);
  EXPECT_EQ(res[0].batch[7].columns[0], "b7");
}

TEST_F(NetTest, MultiGetEmptyBatch) {
  Client c(server_->port());
  c.multiget({});
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_TRUE(res[0].batch.empty());
}

TEST_F(NetTest, MultiGetOversizedBatchRejected) {
  Client c(server_->port());
  c.put("present", {{0, "v"}});
  c.flush();

  std::vector<std::string> keys(kMaxMultigetBatch + 1, "present");
  std::vector<std::string_view> views(keys.begin(), keys.end());
  c.multiget(views);
  c.ping();  // the frame must stay decodable past the rejected op
  auto res = c.flush();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].status, NetStatus::kRejected);
  EXPECT_TRUE(res[0].batch.empty());
  EXPECT_EQ(res[1].status, NetStatus::kOk);

  // Exactly at the cap is accepted.
  views.pop_back();
  c.multiget(views);
  res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), kMaxMultigetBatch);
  EXPECT_TRUE(res[0].batch.front().found);
  EXPECT_TRUE(res[0].batch.back().found);

  // Beyond the wire's u16 count the server could not even parse the batch to
  // reject it, so the client refuses to encode it.
  std::vector<std::string_view> huge(0x10000, "present");
  EXPECT_THROW(c.multiget(huge), std::length_error);
}

TEST_F(NetTest, MultiPutRoundTrip) {
  Client c(server_->port());
  // Seed one key so the batch mixes inserts with an overwrite.
  c.put("mp0", {{0, "old"}});
  c.flush();

  std::vector<std::string> keys(30), avals(30), bvals(30);
  std::vector<netwire::MultiputEntry> entries(30);
  for (int i = 0; i < 30; ++i) {
    keys[i] = "mp" + std::to_string(i);
    avals[i] = "a" + std::to_string(i);
    bvals[i] = "b" + std::to_string(i);
    entries[i] = {keys[i], {{0, avals[i]}, {1, bvals[i]}}};
  }
  c.multiput(entries);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), 30u);
  EXPECT_FALSE(res[0].batch[0].inserted);  // overwrite of the seeded key
  for (int i = 1; i < 30; ++i) {
    EXPECT_TRUE(res[0].batch[i].inserted) << i;
  }

  // Read-your-writes through the batched path.
  std::vector<std::string_view> views(keys.begin(), keys.end());
  c.multiget(views);
  res = c.flush();
  ASSERT_EQ(res[0].batch.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(res[0].batch[i].found) << i;
    ASSERT_EQ(res[0].batch[i].columns.size(), 2u) << i;
    EXPECT_EQ(res[0].batch[i].columns[0], "a" + std::to_string(i));
  }
}

TEST_F(NetTest, MultiPutDuplicateKeysLastWriteWins) {
  Client c(server_->port());
  std::vector<netwire::MultiputEntry> entries = {
      {"dup", {{0, "first"}}},
      {"dup", {{0, "last"}}},
      {"solo", {{0, "s"}}},
  };
  c.multiput(entries);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), 3u);
  // As-if-sequential flags: the first dup inserts, the second "replaces" it.
  EXPECT_TRUE(res[0].batch[0].inserted);
  EXPECT_FALSE(res[0].batch[1].inserted);
  EXPECT_TRUE(res[0].batch[2].inserted);

  c.get("dup");
  res = c.flush();
  ASSERT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_EQ(res[0].columns[0], "last");
}

TEST_F(NetTest, MultiPutEmptyBatch) {
  Client c(server_->port());
  c.multiput({});
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_TRUE(res[0].batch.empty());
}

TEST_F(NetTest, MultiPutOversizedBatchRejected) {
  Client c(server_->port());

  // Over the cap: rejected in-band, the frame stays decodable, the
  // connection lives, and none of the rejected batch's writes execute.
  std::vector<netwire::MultiputEntry> over(kMaxMultigetBatch + 1,
                                           {"mp-reject", {{0, "x"}}});
  c.multiput(over);
  c.ping();
  auto res = c.flush();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].status, NetStatus::kRejected);
  EXPECT_TRUE(res[0].batch.empty());
  EXPECT_EQ(res[1].status, NetStatus::kOk);
  c.get("mp-reject");
  res = c.flush();
  EXPECT_EQ(res[0].status, NetStatus::kNotFound);

  // Exactly at the cap is accepted (all distinct keys, all inserted).
  std::vector<std::string> keys(kMaxMultigetBatch);
  std::vector<netwire::MultiputEntry> atcap(kMaxMultigetBatch);
  for (size_t i = 0; i < kMaxMultigetBatch; ++i) {
    keys[i] = "cap" + std::to_string(i);
    atcap[i] = {keys[i], {{0, "v"}}};
  }
  c.multiput(atcap);
  res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), kMaxMultigetBatch);
  EXPECT_TRUE(res[0].batch.front().inserted);
  EXPECT_TRUE(res[0].batch.back().inserted);

  // Beyond the wire's u16 count the client refuses to encode.
  std::vector<netwire::MultiputEntry> huge(0x10000, {"k", {}});
  EXPECT_THROW(c.multiput(huge), std::length_error);
}

TEST_F(NetTest, ManyClientsConcurrently) {
  constexpr int kClients = 6, kOps = 300;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c(server_->port());
      for (int i = 0; i < kOps; ++i) {
        c.put("cli" + std::to_string(t) + "-" + std::to_string(i),
              {{0, std::to_string(i)}});
      }
      c.flush();
      for (int i = 0; i < kOps; ++i) {
        c.get("cli" + std::to_string(t) + "-" + std::to_string(i));
      }
      auto res = c.flush();
      for (int i = 0; i < kOps; ++i) {
        if (res[i].status != NetStatus::kOk || res[i].columns[0] != std::to_string(i)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GE(server_->ops_served(), static_cast<uint64_t>(kClients) * kOps * 2);
}

TEST_F(NetTest, SplitFramesAcrossWrites) {
  // A frame delivered byte-by-byte must still parse.
  Client probe(server_->port());  // establishes that server is up
  probe.ping();
  probe.flush();

  // Hand-roll a connection that dribbles bytes.
  Client c(server_->port());
  c.put("dribble", {{0, "x"}});
  auto res = c.flush();
  EXPECT_TRUE(res[0].inserted);
}

// ---------------------------------------------------------------------------
// Framing-layer unit tests (src/net/framing.h): the incremental decoder and
// the reusable rx/tx buffers the event-loop server is built on.

TEST(Framing, DecodeFrameStatuses) {
  std::string f1 = "hello";
  netwire::frame(&f1);
  std::string f2 = "world!";
  netwire::frame(&f2);
  std::string both = f1 + f2;

  std::string_view body;
  size_t flen = 0;
  // Every proper prefix of a single frame is kNeedMore.
  for (size_t n = 0; n < f1.size(); ++n) {
    EXPECT_EQ(netframe::decode_frame(std::string_view(both).substr(0, n), 0, &body, &flen),
              netframe::FrameStatus::kNeedMore)
        << n;
  }
  // A complete frame decodes without being consumed, at any offset.
  ASSERT_EQ(netframe::decode_frame(both, 0, &body, &flen), netframe::FrameStatus::kFrame);
  EXPECT_EQ(body, "hello");
  EXPECT_EQ(flen, f1.size());
  ASSERT_EQ(netframe::decode_frame(both, flen, &body, &flen),
            netframe::FrameStatus::kFrame);
  EXPECT_EQ(body, "world!");

  // A length prefix above kMaxFrameBody is unrecoverable.
  uint32_t huge = static_cast<uint32_t>(kMaxFrameBody) + 1;
  std::string bad(reinterpret_cast<const char*>(&huge), sizeof(huge));
  EXPECT_EQ(netframe::decode_frame(bad, 0, &body, &flen), netframe::FrameStatus::kTooBig);
}

TEST(Framing, InBufferCompactionAndGrowth) {
  netframe::InBuffer in(16);
  in.append("0123456789");
  EXPECT_EQ(in.view(), "0123456789");
  in.consume(4);
  EXPECT_EQ(in.view(), "456789");

  // Needs more room than the tail offers but fits after compaction.
  netframe::InBuffer in2(16);
  in2.append("0123456789");
  in2.consume(8);
  in2.append("ABCDEFGHIJ");
  EXPECT_EQ(in2.view(), "89ABCDEFGHIJ");
  EXPECT_EQ(in2.capacity(), 16u);  // compacted, not grown

  // Does not fit even compacted: grows, preserving unconsumed bytes.
  in.append("abcdefghijkl");
  EXPECT_EQ(in.view(), "456789abcdefghijkl");
  EXPECT_GT(in.capacity(), 16u);

  // Consuming everything resets to the buffer start for free.
  in.consume(in.size());
  EXPECT_EQ(in.size(), 0u);
  in.append("x");
  EXPECT_EQ(in.view(), "x");
}

// Drains a TxRing through a socketpair (flush uses sendmsg, which requires a
// socket fd) and returns what came out the other end.
std::string DrainThroughPipe(netframe::TxRing& tx) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string out;
  while (!tx.empty()) {
    ssize_t n = tx.flush(fds[1]);
    if (n <= 0) {
      ADD_FAILURE() << "socketpair flush failed";
      break;
    }
    char buf[4096];
    ssize_t r = ::read(fds[0], buf, sizeof(buf));
    if (r <= 0) {
      ADD_FAILURE() << "socketpair read failed";
      break;
    }
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fds[0]);
  ::close(fds[1]);
  return out;
}

TEST(Framing, TxRingWrapFlushAndPatch) {
  netframe::TxRing tx(64);
  ASSERT_EQ(tx.capacity(), 64u);
  tx.append(std::string(40, 'a'));
  EXPECT_EQ(DrainThroughPipe(tx), std::string(40, 'a'));

  // The next 40 bytes wrap the 64-byte ring; gather/flush must still emit
  // them in order.
  tx.append(std::string(40, 'b'));
  EXPECT_EQ(tx.capacity(), 64u);  // wrapped, not grown
  std::string peeked;
  tx.peek(&peeked);
  EXPECT_EQ(peeked, std::string(40, 'b'));
  EXPECT_EQ(DrainThroughPipe(tx), std::string(40, 'b'));
}

TEST(Framing, TxRingPatchAcrossWrapBoundary) {
  netframe::TxRing tx(64);
  tx.append(std::string(62, 'x'));
  EXPECT_EQ(DrainThroughPipe(tx), std::string(62, 'x'));

  // The placeholder's 4 bytes straddle the ring boundary (indices 62, 63,
  // 0, 1); the absolute-position patch must land on all of them.
  uint64_t pos = tx.reserve_u32();
  tx.append("tail");
  tx.patch_u32(pos, 0xAABBCCDDu);
  std::string expect(4, '\0');
  uint32_t v = 0xAABBCCDDu;
  std::memcpy(expect.data(), &v, sizeof(v));
  expect += "tail";
  EXPECT_EQ(DrainThroughPipe(tx), expect);
}

TEST(Framing, TxRingGrowthKeepsReservedPositionsPatchable) {
  netframe::TxRing tx(64);
  // Leave the ring wrapped (head beyond index 0) before growing, so growth
  // must re-home bytes rather than copy linearly.
  tx.append(std::string(30, 'a'));
  EXPECT_EQ(DrainThroughPipe(tx), std::string(30, 'a'));
  tx.append(std::string(50, 'b'));
  uint64_t pos = tx.reserve_u32();
  tx.append(std::string(60, 'c'));  // forces growth past 64 bytes
  EXPECT_GT(tx.capacity(), 64u);
  tx.patch_u32(pos, 0x01020304u);

  std::string expect = std::string(50, 'b');
  uint32_t v = 0x01020304u;
  expect.append(reinterpret_cast<const char*>(&v), sizeof(v));
  expect += std::string(60, 'c');
  EXPECT_EQ(DrainThroughPipe(tx), expect);

  uint8_t first = tx.peek_u8(0);  // ring drained; peek of stale bytes is fine
  (void)first;
}

// ---------------------------------------------------------------------------
// Hostile-network suite: raw sockets doing what the Client never would.

// A raw loopback connection with byte-level control over writes.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~RawConn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  void send_raw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0) << "raw write failed";
      off += static_cast<size_t>(n);
    }
  }

  // Blocks for one complete response frame; empty + eof() on connection
  // close.
  std::string read_body() {
    for (;;) {
      size_t consumed = 0;
      auto body = netwire::try_frame(inbuf_, &consumed);
      if (body) {
        std::string out(*body);
        inbuf_.erase(0, consumed);
        return out;
      }
      char buf[4096];
      ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        eof_ = true;
        return std::string();
      }
      inbuf_.append(buf, static_cast<size_t>(n));
    }
  }

  // True once the server has closed the connection (blocks until it does).
  bool at_eof() {
    while (!eof_ && inbuf_.empty()) {
      char buf[4096];
      ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        eof_ = true;
        break;
      }
      inbuf_.append(buf, static_cast<size_t>(n));
    }
    return eof_ && inbuf_.empty();
  }

  void close_now() {
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string inbuf_;
  bool eof_ = false;
};

void ExpectServerAlive(uint16_t port) {
  Client c(port);
  c.ping();
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
}

TEST_F(NetTest, ByteAtATimeDribble) {
  Client seed(server_->port());
  seed.put("drip", {{0, "value"}});
  seed.flush();

  std::string body;
  netwire::encode_get(&body, "drip", {});
  netwire::encode_ping(&body);
  netwire::frame(&body);

  RawConn rc(server_->port());
  for (char ch : body) {
    rc.send_raw(std::string_view(&ch, 1));
  }
  std::string resp = rc.read_body();
  netwire::Reader r(resp);
  uint8_t status;
  uint16_t ncols;
  uint32_t len;
  std::string_view data;
  ASSERT_TRUE(r.read(&status) && r.read(&ncols) && r.read(&len) &&
              r.read_bytes(len, &data));
  EXPECT_EQ(status, 0);
  EXPECT_EQ(ncols, 1);
  EXPECT_EQ(data, "value");
  ASSERT_TRUE(r.read(&status));  // the pipelined ping in the same frame
  EXPECT_EQ(status, 0);
  EXPECT_TRUE(r.done());
}

TEST_F(NetTest, EverySplitOffset) {
  // Property loop: a put+get frame split into two writes at EVERY byte
  // offset — header boundaries, key boundaries, value boundaries — must
  // decode identically.
  std::string body;
  netwire::encode_put(&body, "sp-key",
                      {{0, std::string_view("split-value")}, {1, std::string_view("b")}});
  netwire::encode_get(&body, "sp-key", {0});
  netwire::frame(&body);

  for (size_t split = 1; split < body.size(); ++split) {
    RawConn rc(server_->port());
    rc.send_raw(std::string_view(body).substr(0, split));
    rc.send_raw(std::string_view(body).substr(split));
    std::string resp = rc.read_body();
    netwire::Reader r(resp);
    uint8_t status, inserted;
    ASSERT_TRUE(r.read(&status) && r.read(&inserted)) << "split=" << split;
    EXPECT_EQ(status, 0) << "split=" << split;
    uint16_t ncols;
    uint32_t len;
    std::string_view data;
    ASSERT_TRUE(r.read(&status) && r.read(&ncols) && r.read(&len) &&
                r.read_bytes(len, &data))
        << "split=" << split;
    EXPECT_EQ(status, 0) << "split=" << split;
    ASSERT_EQ(ncols, 1) << "split=" << split;
    EXPECT_EQ(data, "split-value") << "split=" << split;
    EXPECT_TRUE(r.done()) << "split=" << split;
  }
}

TEST_F(NetTest, PipelinedBackToBackFrames) {
  // Three complete request frames in ONE write: the server must answer with
  // three response frames, in order, with read-your-writes across them.
  std::string f1;
  netwire::encode_put(&f1, "pp", {{0, std::string_view("first")}});
  netwire::frame(&f1);
  std::string f2;
  netwire::encode_get(&f2, "pp", {});
  netwire::encode_put(&f2, "pp", {{0, std::string_view("second")}});
  netwire::frame(&f2);
  std::string f3;
  netwire::encode_get(&f3, "pp", {});
  netwire::frame(&f3);

  RawConn rc(server_->port());
  rc.send_raw(f1 + f2 + f3);

  std::string r1 = rc.read_body();
  ASSERT_EQ(r1.size(), 2u);  // put: status + inserted
  EXPECT_EQ(r1[0], 0);
  EXPECT_EQ(r1[1], 1);

  std::string r2 = rc.read_body();
  {
    netwire::Reader r(r2);
    uint8_t status, inserted;
    uint16_t ncols;
    uint32_t len;
    std::string_view data;
    ASSERT_TRUE(r.read(&status) && r.read(&ncols) && r.read(&len) &&
                r.read_bytes(len, &data));
    EXPECT_EQ(data, "first");  // the get in frame 2 sees frame 1's put
    ASSERT_TRUE(r.read(&status) && r.read(&inserted));
    EXPECT_EQ(inserted, 0);  // overwrite
    EXPECT_TRUE(r.done());
  }

  std::string r3 = rc.read_body();
  {
    netwire::Reader r(r3);
    uint8_t status;
    uint16_t ncols;
    uint32_t len;
    std::string_view data;
    ASSERT_TRUE(r.read(&status) && r.read(&ncols) && r.read(&len) &&
                r.read_bytes(len, &data));
    EXPECT_EQ(data, "second");  // and frame 3's get sees frame 2's overwrite
    EXPECT_TRUE(r.done());
  }
}

TEST_F(NetTest, ClientPipeliningSendReceive) {
  Client c(server_->port());
  // Keep several frames in flight, then collect responses in order.
  for (int d = 0; d < 8; ++d) {
    c.put("pipe" + std::to_string(d), {{0, std::to_string(d)}});
    c.get("pipe" + std::to_string(d));
    c.send();
  }
  EXPECT_EQ(c.inflight(), 8u);
  for (int d = 0; d < 8; ++d) {
    auto res = c.receive();
    ASSERT_EQ(res.size(), 2u) << d;
    EXPECT_TRUE(res[0].inserted) << d;
    ASSERT_EQ(res[1].status, NetStatus::kOk) << d;
    EXPECT_EQ(res[1].columns[0], std::to_string(d)) << d;  // read-your-writes
  }
  EXPECT_EQ(c.inflight(), 0u);
}

TEST_F(NetTest, OversizedLengthHeaderRejected) {
  RawConn rc(server_->port());
  uint32_t huge = static_cast<uint32_t>(kMaxFrameBody) + 1;
  rc.send_raw(std::string_view(reinterpret_cast<const char*>(&huge), sizeof(huge)));

  // One final frame whose body is a single kRejected byte, then close.
  std::string resp = rc.read_body();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(static_cast<NetStatus>(resp[0]), NetStatus::kRejected);
  EXPECT_TRUE(rc.at_eof());

  // The worker (and the server) keeps serving other connections.
  ExpectServerAlive(server_->port());
}

TEST_F(NetTest, GarbageOpcodeRejectedAfterEarlierFrames) {
  // A pipelined good frame before the poisoned one is still answered; the
  // poisoned frame gets the final kRejected and the close.
  std::string good;
  netwire::encode_ping(&good);
  netwire::frame(&good);
  std::string bad;
  netwire::put_raw<uint8_t>(&bad, 0xEE);  // no such opcode
  netwire::frame(&bad);

  RawConn rc(server_->port());
  rc.send_raw(good + bad);
  std::string r1 = rc.read_body();
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(static_cast<NetStatus>(r1[0]), NetStatus::kOk);
  std::string r2 = rc.read_body();
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(static_cast<NetStatus>(r2[0]), NetStatus::kRejected);
  EXPECT_TRUE(rc.at_eof());
  ExpectServerAlive(server_->port());
}

TEST_F(NetTest, MalformedFrameIsRejectedAsAUnit) {
  // Ops parsed from a frame that later turns out malformed must NOT execute:
  // the frame is rejected atomically.
  std::string body;
  netwire::encode_put(&body, "must-not-exist", {{0, std::string_view("x")}});
  netwire::put_raw<uint8_t>(&body, 0xEE);
  netwire::frame(&body);

  RawConn rc(server_->port());
  rc.send_raw(body);
  std::string resp = rc.read_body();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(static_cast<NetStatus>(resp[0]), NetStatus::kRejected);
  EXPECT_TRUE(rc.at_eof());

  Client c(server_->port());
  c.get("must-not-exist");
  auto res = c.flush();
  EXPECT_EQ(res[0].status, NetStatus::kNotFound);
}

TEST_F(NetTest, TruncatedOpBodyRejected) {
  // A kGet whose declared key length overruns the frame body: the stream
  // cannot be resynchronized.
  std::string body;
  netwire::put_raw<uint8_t>(&body, static_cast<uint8_t>(NetOp::kGet));
  netwire::put_raw<uint32_t>(&body, 100);  // klen far beyond the body
  body += "abc";
  netwire::frame(&body);

  RawConn rc(server_->port());
  rc.send_raw(body);
  std::string resp = rc.read_body();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(static_cast<NetStatus>(resp[0]), NetStatus::kRejected);
  EXPECT_TRUE(rc.at_eof());
  ExpectServerAlive(server_->port());
}

TEST_F(NetTest, EmptyFrameGetsEmptyResponse) {
  RawConn rc(server_->port());
  std::string empty;
  netwire::frame(&empty);
  rc.send_raw(empty + empty);
  EXPECT_EQ(rc.read_body(), "");
  EXPECT_EQ(rc.read_body(), "");
  ExpectServerAlive(server_->port());
}

TEST_F(NetTest, MultiPutMidBatchDisconnect) {
  // A connection dying in the middle of a kMultiPut frame: the partial frame
  // is dropped whole — none of its entries (not even fully-received ones)
  // may execute, because a frame is the atomic unit of parsing.
  std::string body;
  std::vector<netwire::MultiputEntry> entries = {
      {"mpd-first", {{0, "v1"}}},
      {"mpd-second", {{0, "v2"}}},
  };
  netwire::encode_multiput(&body, entries);
  netwire::frame(&body);

  for (size_t cut = 1; cut < body.size(); cut += 7) {
    RawConn rc(server_->port());
    rc.send_raw(std::string_view(body).substr(0, cut));
    rc.close_now();
  }
  ExpectServerAlive(server_->port());
  Client c(server_->port());
  c.get("mpd-first");
  c.get("mpd-second");
  auto res = c.flush();
  EXPECT_EQ(res[0].status, NetStatus::kNotFound);
  EXPECT_EQ(res[1].status, NetStatus::kNotFound);
}

TEST_F(NetTest, MidRequestDisconnect) {
  // Clients vanishing mid-frame, over and over, must not wedge the workers.
  std::string body;
  netwire::encode_put(&body, "ghost-key", {{0, std::string_view("ghost-value")}});
  netwire::frame(&body);

  for (int i = 0; i < 16; ++i) {
    RawConn rc(server_->port());
    size_t cut = 1 + (static_cast<size_t>(i) % (body.size() - 1));
    rc.send_raw(std::string_view(body).substr(0, cut));
    rc.close_now();  // trailing partial frame is simply dropped
  }
  // A complete frame followed by a partial one: the complete one is answered,
  // the partial one dies with the connection.
  for (int i = 0; i < 4; ++i) {
    RawConn rc(server_->port());
    std::string ping;
    netwire::encode_ping(&ping);
    netwire::frame(&ping);
    rc.send_raw(ping + body.substr(0, body.size() / 2));
    std::string resp = rc.read_body();
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(static_cast<NetStatus>(resp[0]), NetStatus::kOk);
    rc.close_now();
  }
  ExpectServerAlive(server_->port());

  // The dropped partial puts must never have executed.
  Client c(server_->port());
  c.get("ghost-key");
  auto res = c.flush();
  EXPECT_EQ(res[0].status, NetStatus::kNotFound);
}

}  // namespace
}  // namespace masstree
