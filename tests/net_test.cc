// Network protocol and client/server tests (§5): framing, batched ops over
// loopback TCP, multiple workers and connections.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "kvstore/store.h"
#include "net/client.h"
#include "net/proto.h"
#include "net/server.h"

namespace masstree {
namespace {

TEST(Proto, FrameRoundTrip) {
  std::string body = "hello frame";
  std::string framed = body;
  netwire::frame(&framed);
  EXPECT_EQ(framed.size(), body.size() + 4);
  size_t consumed = 0;
  auto got = netwire::try_frame(framed, &consumed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
  EXPECT_EQ(consumed, framed.size());
}

TEST(Proto, PartialFrameReturnsNothing) {
  std::string body = "0123456789";
  std::string framed = body;
  netwire::frame(&framed);
  size_t consumed = 0;
  EXPECT_FALSE(netwire::try_frame(std::string_view(framed).substr(0, 3), &consumed));
  EXPECT_FALSE(
      netwire::try_frame(std::string_view(framed).substr(0, framed.size() - 1), &consumed));
}

TEST(Proto, ReaderBoundsChecked) {
  std::string buf = "\x01\x02";
  netwire::Reader r(buf);
  uint8_t a;
  EXPECT_TRUE(r.read(&a));
  uint32_t too_big;
  EXPECT_FALSE(r.read(&too_big));
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(store_, Server::Options{0, 2});
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  Store store_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetTest, PingPong) {
  Client c(server_->port());
  c.ping();
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
}

TEST_F(NetTest, PutGetRemove) {
  Client c(server_->port());
  c.put("alpha", {{0, "one"}, {1, "two"}});
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(res[0].inserted);

  c.get("alpha");
  c.get("alpha", {1});
  c.get("missing");
  res = c.flush();
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].columns.size(), 2u);
  EXPECT_EQ(res[0].columns[0], "one");
  EXPECT_EQ(res[0].columns[1], "two");
  ASSERT_EQ(res[1].columns.size(), 1u);
  EXPECT_EQ(res[1].columns[0], "two");
  EXPECT_EQ(res[2].status, NetStatus::kNotFound);

  c.remove("alpha");
  c.remove("alpha");
  res = c.flush();
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_EQ(res[1].status, NetStatus::kNotFound);
}

TEST_F(NetTest, BatchedQueries) {
  // "A single client message can include many queries" (§3).
  Client c(server_->port());
  for (int i = 0; i < 500; ++i) {
    c.put("batch" + std::to_string(i), {{0, "v" + std::to_string(i)}});
  }
  auto res = c.flush();
  ASSERT_EQ(res.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    c.get("batch" + std::to_string(i));
  }
  res = c.flush();
  ASSERT_EQ(res.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(res[i].status, NetStatus::kOk) << i;
    ASSERT_EQ(res[i].columns[0], "v" + std::to_string(i));
  }
}

TEST_F(NetTest, ScanOverNetwork) {
  Client c(server_->port());
  for (int i = 0; i < 40; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "s%03d", i);
    c.put(buf, {{0, "a" + std::to_string(i)}, {1, "b" + std::to_string(i)}});
  }
  c.flush();
  c.scan("s010", 5, 1);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].scan_items.size(), 5u);
  EXPECT_EQ(res[0].scan_items[0].first, "s010");
  EXPECT_EQ(res[0].scan_items[0].second, "b10");
  EXPECT_EQ(res[0].scan_items[4].first, "s014");
}

TEST_F(NetTest, MultiGetRoundTrip) {
  Client c(server_->port());
  for (int i = 0; i < 30; ++i) {
    c.put("mg" + std::to_string(i),
          {{0, "a" + std::to_string(i)}, {1, "b" + std::to_string(i)}});
  }
  c.flush();

  // Mixed hits and misses, all columns: one op, one round trip.
  std::vector<std::string> keys;
  for (int i = 0; i < 40; ++i) {  // 30..39 are partial misses
    keys.push_back("mg" + std::to_string(i));
  }
  std::vector<std::string_view> views(keys.begin(), keys.end());
  c.multiget(views);
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    if (i < 30) {
      ASSERT_TRUE(res[0].batch[i].found) << i;
      ASSERT_EQ(res[0].batch[i].columns.size(), 2u) << i;
      EXPECT_EQ(res[0].batch[i].columns[0], "a" + std::to_string(i));
      EXPECT_EQ(res[0].batch[i].columns[1], "b" + std::to_string(i));
    } else {
      EXPECT_FALSE(res[0].batch[i].found) << i;
      EXPECT_TRUE(res[0].batch[i].columns.empty()) << i;
    }
  }

  // Column selection applies to every key in the batch.
  c.multiget(views, {1});
  res = c.flush();
  ASSERT_EQ(res[0].batch.size(), 40u);
  ASSERT_EQ(res[0].batch[7].columns.size(), 1u);
  EXPECT_EQ(res[0].batch[7].columns[0], "b7");
}

TEST_F(NetTest, MultiGetEmptyBatch) {
  Client c(server_->port());
  c.multiget({});
  auto res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  EXPECT_TRUE(res[0].batch.empty());
}

TEST_F(NetTest, MultiGetOversizedBatchRejected) {
  Client c(server_->port());
  c.put("present", {{0, "v"}});
  c.flush();

  std::vector<std::string> keys(kMaxMultigetBatch + 1, "present");
  std::vector<std::string_view> views(keys.begin(), keys.end());
  c.multiget(views);
  c.ping();  // the frame must stay decodable past the rejected op
  auto res = c.flush();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].status, NetStatus::kRejected);
  EXPECT_TRUE(res[0].batch.empty());
  EXPECT_EQ(res[1].status, NetStatus::kOk);

  // Exactly at the cap is accepted.
  views.pop_back();
  c.multiget(views);
  res = c.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].status, NetStatus::kOk);
  ASSERT_EQ(res[0].batch.size(), kMaxMultigetBatch);
  EXPECT_TRUE(res[0].batch.front().found);
  EXPECT_TRUE(res[0].batch.back().found);

  // Beyond the wire's u16 count the server could not even parse the batch to
  // reject it, so the client refuses to encode it.
  std::vector<std::string_view> huge(0x10000, "present");
  EXPECT_THROW(c.multiget(huge), std::length_error);
}

TEST_F(NetTest, ManyClientsConcurrently) {
  constexpr int kClients = 6, kOps = 300;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c(server_->port());
      for (int i = 0; i < kOps; ++i) {
        c.put("cli" + std::to_string(t) + "-" + std::to_string(i),
              {{0, std::to_string(i)}});
      }
      c.flush();
      for (int i = 0; i < kOps; ++i) {
        c.get("cli" + std::to_string(t) + "-" + std::to_string(i));
      }
      auto res = c.flush();
      for (int i = 0; i < kOps; ++i) {
        if (res[i].status != NetStatus::kOk || res[i].columns[0] != std::to_string(i)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GE(server_->ops_served(), static_cast<uint64_t>(kClients) * kOps * 2);
}

TEST_F(NetTest, SplitFramesAcrossWrites) {
  // A frame delivered byte-by-byte must still parse.
  Client probe(server_->port());  // establishes that server is up
  probe.ping();
  probe.flush();

  // Hand-roll a connection that dribbles bytes.
  Client c(server_->port());
  c.put("dribble", {{0, "x"}});
  auto res = c.flush();
  EXPECT_TRUE(res[0].inserted);
}

}  // namespace
}  // namespace masstree
