// multiput/multiremove (§4.8 software-pipelined batched writes) tests:
// oracle-diffing against sequential puts over mixed short/suffix/layer-deep
// keys, mixed put/remove batches, duplicate-key last-write-wins semantics,
// counter bookkeeping, a ChurnDriver writer-vs-writer stress run (this suite
// is in the tier-2 TSan lane), and Store-level recovery-replay equivalence
// proving batch-logged state replays identically to sequential puts.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/tree.h"
#include "kvstore/store.h"
#include "support/test_support.h"
#include "util/rand.h"

namespace masstree {
namespace {

namespace fs = std::filesystem;

using test_support::ChurnDriver;
using test_support::Oracle;
using test_support::seeded_rng;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Apply `reqs` via multiput to `batched` and one-by-one to `sequential`,
// then assert both trees hold the same state and the batch reported the same
// per-request inserted/found flags the sequential run produced.
void expect_matches_sequential(Tree& batched, Tree& sequential,
                               std::vector<Tree::PutRequest> reqs,
                               ThreadContext& ti, const char* context) {
  std::vector<Tree::PutRequest> seq = reqs;
  size_t seq_applied = 0;
  for (Tree::PutRequest& rq : seq) {
    uint64_t old = 0;
    if (rq.remove) {
      rq.found = sequential.remove(rq.key, &old, ti);
      seq_applied += rq.found;
    } else {
      rq.inserted = sequential.insert(rq.key, rq.value, &old, ti);
      rq.found = !rq.inserted;
      ++seq_applied;
    }
  }
  size_t applied = batched.multiput(std::span<Tree::PutRequest>(reqs), ti);
  ASSERT_EQ(applied, seq_applied) << context;
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(reqs[i].inserted, seq[i].inserted)
        << context << " i=" << i << " key=" << reqs[i].key;
    ASSERT_EQ(reqs[i].found, seq[i].found)
        << context << " i=" << i << " key=" << reqs[i].key;
  }
  // Both trees agree key-for-key (batch may differ only in never-applied
  // duplicate intermediates, which leave no state behind).
  for (const Tree::PutRequest& rq : seq) {
    uint64_t bv = 0, sv = 0;
    bool bf = batched.get(rq.key, &bv, ti);
    bool sf = sequential.get(rq.key, &sv, ti);
    ASSERT_EQ(bf, sf) << context << " key=" << rq.key;
    if (bf) {
      ASSERT_EQ(bv, sv) << context << " key=" << rq.key;
    }
  }
}

// A key mix that exercises every cursor state: short keys (end inside the
// first slice), exact-8-byte keys, suffixed keys, and keys sharing long
// prefixes so the tree grows multiple trie layers.
std::vector<std::string> mixed_keys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) {
    std::string num = std::to_string(i);
    keys.push_back(num);                                  // short
    keys.push_back("eight_" + std::string(2 - (num.size() > 2), '0') + num);  // ~8 bytes
    keys.push_back("suffixed-key-" + num);                // suffix in the bag
    keys.push_back(std::string(24, 'L') + num);           // shared 3-slice prefix
    keys.push_back("deep" + std::string(40, 'p') + num);  // 5+ layers deep
  }
  return keys;
}

TEST(TreeMultiput, EmptyBatch) {
  ThreadContext ti;
  Tree tree(ti);
  std::vector<Tree::PutRequest> reqs;
  EXPECT_EQ(tree.multiput(std::span<Tree::PutRequest>(reqs), ti), 0u);
}

TEST(TreeMultiput, MixedKeysMatchSequentialPuts) {
  ThreadContext ti;
  Tree batched(ti), sequential(ti);
  std::vector<std::string> keys = mixed_keys(60);

  // Batch sizes below, at, and crossing the in-flight window. Every pass
  // revisits the same keys with new values, so later passes exercise the
  // replace path (and splits/layer creation from earlier passes persist).
  uint64_t stamp = 1;
  for (size_t batch : {size_t{1}, size_t{5}, Tree::kMultigetWindow,
                       Tree::kMultigetWindow + 1, size_t{37}, keys.size()}) {
    for (size_t start = 0; start + batch <= keys.size(); start += batch) {
      std::vector<Tree::PutRequest> reqs(batch);
      for (size_t i = 0; i < batch; ++i) {
        reqs[i].key = keys[start + i];
        reqs[i].value = stamp++;
      }
      expect_matches_sequential(batched, sequential, reqs, ti, "mixed");
    }
  }
  EXPECT_TRUE(test_support::rep_ok(batched));
}

TEST(TreeMultiput, MixedPutAndRemoveBatches) {
  ThreadContext ti;
  Tree batched(ti), sequential(ti);
  Rng rng = seeded_rng(0x4D5052);  // "MPR"
  std::vector<std::string> keys = mixed_keys(40);
  for (int round = 0; round < 30; ++round) {
    std::vector<Tree::PutRequest> reqs(Tree::kMultigetWindow * 2 + 3);
    for (auto& rq : reqs) {
      rq.key = keys[rng.next_range(keys.size())];
      rq.value = rng.next();
      rq.remove = (rng.next() & 3) == 0;  // ~25% removes, often of absent keys
    }
    expect_matches_sequential(batched, sequential, reqs, ti,
                              ("round " + std::to_string(round)).c_str());
  }
  EXPECT_TRUE(test_support::rep_ok(batched));
  EXPECT_TRUE(test_support::rep_ok(sequential));
}

TEST(TreeMultiput, MultiremoveMatchesSequentialRemoves) {
  ThreadContext ti;
  Tree batched(ti), sequential(ti);
  std::vector<std::string> keys = mixed_keys(20);
  uint64_t old;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {  // half the removes will miss
      batched.insert(keys[i], i, &old, ti);
      sequential.insert(keys[i], i, &old, ti);
    }
  }
  std::vector<Tree::PutRequest> reqs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    reqs[i].key = keys[i];
  }
  size_t seq_removed = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    seq_removed += sequential.remove(keys[i], &old, ti);
  }
  EXPECT_EQ(batched.multiremove(std::span<Tree::PutRequest>(reqs), ti), seq_removed);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(reqs[i].found, i % 2 == 0) << keys[i];
    uint64_t v;
    EXPECT_FALSE(batched.get(keys[i], &v, ti)) << keys[i];
  }
  EXPECT_TRUE(test_support::rep_ok(batched));
}

// Duplicate keys in one batch: last write wins, and the response flags still
// read as if the requests had been applied one at a time in span order.
TEST(TreeMultiput, DuplicateKeysLastWriteWins) {
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;
  tree.insert("pre", 7, &old, ti);

  std::vector<Tree::PutRequest> reqs(6);
  // Run on a pre-existing key: put, put — first reads found, second too.
  reqs[0] = Tree::PutRequest{"pre", 100};
  reqs[1] = Tree::PutRequest{"pre", 101};
  // Run on a fresh key: put, put, put — first inserts, later ones "replace".
  reqs[2] = Tree::PutRequest{"fresh", 200};
  reqs[3] = Tree::PutRequest{"fresh", 201};
  reqs[4] = Tree::PutRequest{"fresh", 202};
  // Singleton for contrast.
  reqs[5] = Tree::PutRequest{"solo", 300};
  EXPECT_EQ(tree.multiput(std::span<Tree::PutRequest>(reqs), ti), 6u);

  EXPECT_FALSE(reqs[0].inserted);
  EXPECT_TRUE(reqs[0].found);
  EXPECT_FALSE(reqs[1].inserted);
  EXPECT_TRUE(reqs[1].found);
  EXPECT_TRUE(reqs[2].inserted);
  EXPECT_FALSE(reqs[2].found);
  EXPECT_FALSE(reqs[3].inserted);
  EXPECT_TRUE(reqs[3].found);
  EXPECT_FALSE(reqs[4].inserted);
  EXPECT_TRUE(reqs[4].found);
  EXPECT_TRUE(reqs[5].inserted);

  uint64_t v;
  ASSERT_TRUE(tree.get("pre", &v, ti));
  EXPECT_EQ(v, 101u);  // last write won
  ASSERT_TRUE(tree.get("fresh", &v, ti));
  EXPECT_EQ(v, 202u);
  ASSERT_TRUE(tree.get("solo", &v, ti));
  EXPECT_EQ(v, 300u);
}

TEST(TreeMultiput, DuplicateMixedPutRemoveRuns) {
  ThreadContext ti;
  Tree tree(ti);
  uint64_t old;
  tree.insert("a", 1, &old, ti);

  // put then remove on an existing key: survivor is the remove.
  // remove then put on an absent key: survivor is the put.
  std::vector<Tree::PutRequest> reqs(4);
  reqs[0] = Tree::PutRequest{"a", 10};
  reqs[1] = Tree::PutRequest{"a", 0, true};
  reqs[2] = Tree::PutRequest{"b", 0, true};
  reqs[3] = Tree::PutRequest{"b", 20};
  // As-if-sequential modifications: the "a" put, the "a" remove (which
  // finds the key the put just wrote), and the "b" put — the "b" remove
  // misses. Physically only the two survivors touch the tree, but the
  // reported count matches what sequential application would return.
  EXPECT_EQ(tree.multiput(std::span<Tree::PutRequest>(reqs), ti), 3u);

  EXPECT_TRUE(reqs[0].found);       // as-if-sequential: "a" existed
  EXPECT_TRUE(reqs[1].found);       // the put before it "created" the key
  EXPECT_FALSE(reqs[2].found);      // "b" absent: remove misses
  EXPECT_TRUE(reqs[3].inserted);    // the put after it inserts
  uint64_t v;
  EXPECT_FALSE(tree.get("a", &v, ti));
  ASSERT_TRUE(tree.get("b", &v, ti));
  EXPECT_EQ(v, 20u);
}

TEST(TreeMultiput, BatchAndRetryCountersAdvance) {
  ThreadContext ti;
  Tree tree(ti);
  uint64_t batches = ti.counters().get(Counter::kMultiputBatches);
  uint64_t retries = ti.counters().get(Counter::kMultiputRetries);
  // Suffix-conflicting keys under one slice force make_layer fallbacks, and
  // enough keys force node splits: both paths count kMultiputRetries.
  std::vector<std::string> keys;
  for (int i = 0; i < 400; ++i) {
    keys.push_back("conflict" + std::string(9, 'x') + std::to_string(i));
  }
  std::vector<Tree::PutRequest> reqs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    reqs[i].key = keys[i];
    reqs[i].value = i;
  }
  EXPECT_EQ(tree.multiput(std::span<Tree::PutRequest>(reqs), ti), keys.size());
  EXPECT_EQ(ti.counters().get(Counter::kMultiputBatches), batches + 1);
  EXPECT_GT(ti.counters().get(Counter::kMultiputRetries), retries);
  uint64_t v;
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(tree.get(keys[i], &v, ti)) << keys[i];
    ASSERT_EQ(v, i);
  }
  EXPECT_TRUE(test_support::rep_ok(tree));
}

TEST(TreeMultiput, LargeRandomBatchesAgainstOracle) {
  ThreadContext ti;
  Tree tree(ti);
  Oracle oracle;
  Rng rng = seeded_rng(0x4D50);  // "MP"
  for (int round = 0; round < 8; ++round) {
    std::vector<std::string> keys;
    std::vector<Tree::PutRequest> reqs(500);
    keys.reserve(reqs.size());
    for (auto& rq : reqs) {
      keys.push_back(test_support::padded_key(rng.next_range(3000)));
      rq.key = keys.back();
      rq.value = rng.next();
      rq.remove = (rng.next() & 7) == 0;
    }
    tree.multiput(std::span<Tree::PutRequest>(reqs), ti);
    // Replay the span in order against the oracle (oracle is sequential, so
    // LWW falls out naturally).
    for (const auto& rq : reqs) {
      if (rq.remove) {
        oracle.note_remove(std::string(rq.key));
      } else {
        oracle.note_insert(std::string(rq.key), rq.value);
      }
    }
  }
  test_support::check_tree_matches_oracle(tree, oracle, ti);
  EXPECT_TRUE(test_support::rep_ok(tree));
}

// Writer-vs-writer stress: concurrent multiput batches from several threads
// over a shared key space, each thread writing values tagged with its id.
// Any value read back must be one some thread actually wrote, and the tree's
// invariants must hold throughout (tier-2 runs this under TSan).
TEST(TreeMultiput, ChurnWritersVsWriters) {
  ThreadContext ti;
  Tree tree(ti);
  constexpr int kKeys = 300;
  auto key_at = [](int i) {
    return std::string(12, 'w') + std::to_string(i);  // shared prefix: layer churn
  };

  ChurnDriver churn;
  churn.spawn(3, [&](ThreadContext& wti, Rng& rng) {
    constexpr size_t kBatch = Tree::kMultigetWindow + 3;
    Tree::PutRequest reqs[kBatch];
    std::string keys[kBatch];
    int kidx[kBatch];
    for (size_t i = 0; i < kBatch; ++i) {
      kidx[i] = static_cast<int>(rng.next_range(kKeys));
      keys[i] = key_at(kidx[i]);
      reqs[i] = Tree::PutRequest{keys[i], (rng.next() << 16) | unsigned(kidx[i])};
      reqs[i].remove = (rng.next() & 7) == 0;
    }
    tree.multiput(std::span<Tree::PutRequest>(reqs, kBatch), wti);
    for (size_t i = 0; i < kBatch; ++i) {
      // A replaced/removed value must carry the tag of its own key.
      if (reqs[i].found && reqs[i].old_value != 0 &&
          (reqs[i].old_value & 0xFFFFu) != static_cast<uint64_t>(kidx[i])) {
        return false;
      }
    }
    return true;
  });

  uint64_t old;
  for (uint64_t round = 1; round <= 50; ++round) {
    for (int i = 0; i < kKeys; i += 3) {
      tree.insert(key_at(i), (round << 16) | unsigned(i), &old, ti);
    }
    for (int i = 0; i < kKeys; i += 6) {
      tree.remove(key_at(i), &old, ti);
    }
    tree.run_maintenance(ti);
    ti.reclaim();
  }
  EXPECT_EQ(churn.stop_and_join(), 0);
  EXPECT_TRUE(test_support::rep_ok(tree));
  uint64_t v;
  for (int i = 0; i < kKeys; ++i) {
    if (tree.get(key_at(i), &v, ti)) {
      ASSERT_EQ(v & 0xFFFFu, static_cast<uint64_t>(i)) << key_at(i);
    }
  }
}

// ---- Store-level batched-write semantics ----

// One log record per surviving write: a batch with duplicate keys must log
// exactly as many records as survive dedupe, never one per request — else
// recovery would replay overwritten intermediates (or resurrect removes).
TEST(StoreMultiput, DuplicatesLogOneRecordPerSurvivingWrite) {
  std::string dir = FreshDir("multiput_dedupe_logs");
  Store::Options opt;
  opt.log_dir = dir;
  Store store(opt);
  Store::Session s(store, 0);

  // Warm the session's log shard: the first-ever append allocates the two
  // arena halves (the documented one-time cost single puts pay too); after
  // that the batched path must stay allocation-free.
  store.put("warm", {{0, "w"}}, s);
  uint64_t before = s.ti().counters().get(Counter::kLogAppends);
  uint64_t allocs_before = s.ti().counters().get(Counter::kLogAllocs);
  const ColumnUpdate a0[] = {{0, "first"}};
  const ColumnUpdate a1[] = {{0, "second"}};
  const ColumnUpdate b0[] = {{0, "only"}};
  std::vector<Store::PutOp> ops(4);
  ops[0] = Store::PutOp{"dupkey", a0};
  ops[1] = Store::PutOp{"dupkey", a1};         // survivor for "dupkey"
  ops[2] = Store::PutOp{"other", b0};          // survivor for "other"
  ops[3] = Store::PutOp{"absent", {}, true};   // remove of absent key: no record
  EXPECT_EQ(store.multiput(std::span<Store::PutOp>(ops), s), 3u);
  // 2 surviving writes -> exactly 2 appended records.
  EXPECT_EQ(s.ti().counters().get(Counter::kLogAppends), before + 2);
  // The batched append path must stay allocation-free, like single puts.
  EXPECT_EQ(s.ti().counters().get(Counter::kLogAllocs), allocs_before);

  std::vector<std::string> out;
  ASSERT_TRUE(store.get("dupkey", {}, &out, s));
  EXPECT_EQ(out[0], "second");
  store.sync_logs();

  // Recovery sees only the surviving records: no resurrection divergence.
  Store::Options ropt;
  ropt.log_dir = dir;
  Store recovered(ropt);
  recovered.recover("", dir, 2);
  Store::Session rs(recovered, 0);
  ASSERT_TRUE(recovered.get("dupkey", {}, &out, rs));
  EXPECT_EQ(out[0], "second");
  ASSERT_TRUE(recovered.get("other", {}, &out, rs));
  EXPECT_EQ(out[0], "only");
  EXPECT_FALSE(recovered.get("absent", {}, &out, rs));
}

// Recovery-replay equivalence: a store driven by multiput batches (with
// duplicate keys and interleaved removes) must recover from its log to
// exactly the state an identically-driven sequential store recovers to.
TEST(StoreMultiput, RecoveryReplayMatchesSequentialPuts) {
  std::string bdir = FreshDir("multiput_replay_batched");
  std::string sdir = FreshDir("multiput_replay_sequential");
  Rng rng = seeded_rng(0x5250);  // "RP"
  std::vector<std::string> keys;
  for (int i = 0; i < 120; ++i) {
    keys.push_back("rk" + std::to_string(i));
  }
  // Pre-generate the op stream so both stores see the identical sequence.
  struct Op {
    std::string key, val;
    bool remove;
  };
  std::vector<std::vector<Op>> batches;
  for (int round = 0; round < 40; ++round) {
    std::vector<Op> batch(Tree::kMultigetWindow + 5);
    for (auto& op : batch) {
      op.key = keys[rng.next_range(keys.size())];
      op.val = "v" + std::to_string(rng.next());
      op.remove = (rng.next() & 3) == 0;
    }
    batches.push_back(std::move(batch));
  }

  {
    Store::Options opt;
    opt.log_dir = bdir;
    Store batched(opt);
    Store::Session s(batched, 0);
    for (const auto& batch : batches) {
      std::vector<ColumnUpdate> upds(batch.size());
      std::vector<Store::PutOp> ops(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        upds[i] = ColumnUpdate{0, batch[i].val};
        ops[i].key = batch[i].key;
        ops[i].remove = batch[i].remove;
        if (!batch[i].remove) {
          ops[i].updates = std::span<const ColumnUpdate>(&upds[i], 1);
        }
      }
      batched.multiput(std::span<Store::PutOp>(ops), s);
    }
    batched.sync_logs();
  }
  {
    Store::Options opt;
    opt.log_dir = sdir;
    Store sequential(opt);
    Store::Session s(sequential, 0);
    for (const auto& batch : batches) {
      for (const Op& op : batch) {
        if (op.remove) {
          sequential.remove(op.key, s);
        } else {
          sequential.put(op.key, {{0, op.val}}, s);
        }
      }
    }
    sequential.sync_logs();
  }

  Store::Options bopt, sopt;
  bopt.log_dir = bdir;
  sopt.log_dir = sdir;
  Store rb(bopt), rs(sopt);
  rb.recover("", bdir, 2);
  rs.recover("", sdir, 2);
  Store::Session sb(rb, 0), ss(rs, 0);
  for (const std::string& k : keys) {
    std::vector<std::string> vb, vs;
    bool fb = rb.get(k, {}, &vb, sb);
    bool fs = rs.get(k, {}, &vs, ss);
    ASSERT_EQ(fb, fs) << k;
    if (fb) {
      ASSERT_EQ(vb, vs) << k;
    }
  }
}

}  // namespace
}  // namespace masstree
