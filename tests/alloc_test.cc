// Flow allocator tests (§6.2): size classes, span recovery, remote frees.

#include "alloc/flow.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace masstree {
namespace {

TEST(Flow, SizeClassLookup) {
  using internal::size_class_for;
  using internal::kSizeClasses;
  EXPECT_EQ(kSizeClasses[size_class_for(1)], 16u);
  EXPECT_EQ(kSizeClasses[size_class_for(16)], 16u);
  EXPECT_EQ(kSizeClasses[size_class_for(17)], 32u);
  EXPECT_EQ(kSizeClasses[size_class_for(64)], 64u);
  EXPECT_EQ(kSizeClasses[size_class_for(65)], 128u);
  EXPECT_EQ(kSizeClasses[size_class_for(4096)], 4096u);
  EXPECT_EQ(size_class_for(100000), internal::kNumClasses);  // large
}

TEST(Flow, AllocateWriteFree) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  bind_thread_arena(a);
  void* p = a->allocate(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 100);
  Arena::deallocate(p);
  bind_thread_arena(nullptr);
  flow.release_arena(a);
}

TEST(Flow, NodesAreCacheLineAligned) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  for (int i = 0; i < 100; ++i) {
    void* p = a->allocate(256 + (i % 3) * 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kCacheLineSize, 0u);
  }
  flow.release_arena(a);
}

TEST(Flow, LocalFreeListReuse) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  bind_thread_arena(a);
  void* p1 = a->allocate(64);
  Arena::deallocate(p1);
  void* p2 = a->allocate(64);
  EXPECT_EQ(p1, p2);  // LIFO reuse
  bind_thread_arena(nullptr);
  flow.release_arena(a);
}

TEST(Flow, DistinctAllocations) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  std::set<void*> seen;
  for (int i = 0; i < 10000; ++i) {
    void* p = a->allocate(48);
    EXPECT_TRUE(seen.insert(p).second);
  }
  flow.release_arena(a);
}

TEST(Flow, LargeAllocation) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  size_t big = 3u << 20;  // 3 MB, above the largest class
  char* p = static_cast<char*>(a->allocate(big));
  ASSERT_NE(p, nullptr);
  p[0] = 'x';
  p[big - 1] = 'y';
  Arena::deallocate(p);
  flow.release_arena(a);
}

TEST(Flow, RemoteFreeDrains) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  bind_thread_arena(a);
  // Exhaust one span's worth so the drain path triggers.
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    ptrs.push_back(a->allocate(64));
  }
  std::thread other([&] {
    // Not the owner: frees go onto the span's remote list.
    for (void* p : ptrs) {
      Arena::deallocate(p);
    }
  });
  other.join();
  // Owner reallocates; must be able to drain the remote frees rather than
  // mapping fresh chunks forever.
  uint64_t chunks_before = flow.chunks_mapped();
  std::set<void*> reused(ptrs.begin(), ptrs.end());
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    void* p = a->allocate(64);
    if (reused.count(p)) {
      ++hits;
    }
  }
  EXPECT_GT(hits, 0);
  EXPECT_LE(flow.chunks_mapped(), chunks_before + 1);
  bind_thread_arena(nullptr);
  flow.release_arena(a);
}

TEST(Flow, SpansAreCarvedNotBurned) {
  // Regression: a fresh span must become the carving span, so consecutive
  // allocations fill it instead of mapping a new span per object.
  Flow flow;
  Arena* a = flow.acquire_arena();
  for (int i = 0; i < 10000; ++i) {
    a->allocate(256);
  }
  // 10000 x 256B = 2.44 MB; spans are 64 KB, so ~40 spans and 1-2 chunks.
  EXPECT_LT(a->stats().spans, 60u);
  EXPECT_LE(flow.chunks_mapped(), 2u);
  flow.release_arena(a);
}

TEST(Flow, ArenaPoolingReusesArenas) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  flow.release_arena(a);
  Arena* b = flow.acquire_arena();
  EXPECT_EQ(a, b);
  flow.release_arena(b);
}

TEST(Flow, StatsCount) {
  Flow flow;
  Arena* a = flow.acquire_arena();
  bind_thread_arena(a);
  uint64_t before = a->stats().allocated_objects;
  void* p = a->allocate(32);
  EXPECT_EQ(a->stats().allocated_objects, before + 1);
  Arena::deallocate(p);
  EXPECT_EQ(a->stats().freed_objects, 1u);
  bind_thread_arena(nullptr);
  flow.release_arena(a);
}

TEST(Flow, ConcurrentAllocFreeStress) {
  Flow flow;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&flow, t] {
      Arena* a = flow.acquire_arena();
      bind_thread_arena(a);
      std::vector<void*> live;
      uint64_t rng = 0x12345 + t;
      for (int i = 0; i < kIters; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        size_t sz = 16 + (rng % 512);
        void* p = a->allocate(sz);
        std::memset(p, static_cast<int>(rng & 0xff), sz > 16 ? 16 : sz);
        live.push_back(p);
        if (live.size() > 64) {
          size_t idx = rng % live.size();
          Arena::deallocate(live[idx]);
          live[idx] = live.back();
          live.pop_back();
        }
      }
      for (void* p : live) {
        Arena::deallocate(p);
      }
      bind_thread_arena(nullptr);
      flow.release_arena(a);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

}  // namespace
}  // namespace masstree
