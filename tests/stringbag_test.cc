// Suffix-bag tests (§4.2).

#include "core/stringbag.h"

#include <gtest/gtest.h>

#include <string>

#include "core/threadinfo.h"

namespace masstree {
namespace {

class StringBagTest : public ::testing::Test {
 protected:
  ThreadContext ti_;
};

TEST_F(StringBagTest, AssignAndGet) {
  StringBag* bag = StringBag::make(ti_, 15, 64);
  EXPECT_TRUE(bag->assign(0, "hello"));
  EXPECT_TRUE(bag->assign(3, "world!"));
  EXPECT_EQ(bag->get(0), "hello");
  EXPECT_EQ(bag->get(3), "world!");
  EXPECT_EQ(bag->get(1), "");  // unset slots read as empty
  Arena::deallocate(bag);
}

TEST_F(StringBagTest, BinarySuffixes) {
  StringBag* bag = StringBag::make(ti_, 15, 64);
  std::string bin("\x00\x01\xff\x00zz", 6);
  EXPECT_TRUE(bag->assign(7, bin));
  EXPECT_EQ(bag->get(7), bin);
  EXPECT_TRUE(bag->equals(7, bin));
  EXPECT_FALSE(bag->equals(7, "zz"));
  Arena::deallocate(bag);
}

TEST_F(StringBagTest, OverflowReturnsFalse) {
  StringBag* bag = StringBag::make(ti_, 15, 8);
  EXPECT_TRUE(bag->assign(0, "12345678"));
  EXPECT_FALSE(bag->assign(1, "x"));  // full
  Arena::deallocate(bag);
}

TEST_F(StringBagTest, ReassignIsAppendOnly) {
  StringBag* bag = StringBag::make(ti_, 15, 64);
  EXPECT_TRUE(bag->assign(2, "first"));
  std::string_view old = bag->get(2);
  EXPECT_TRUE(bag->assign(2, "second"));
  EXPECT_EQ(bag->get(2), "second");
  // The old bytes are still intact (a concurrent reader holding the old ref
  // must not see them scribbled).
  EXPECT_EQ(old, "first");
  Arena::deallocate(bag);
}

TEST_F(StringBagTest, CopyKeepsOnlyLiveMask) {
  StringBag* bag = StringBag::make(ti_, 15, 128);
  bag->assign(0, "zero");
  bag->assign(1, "one");
  bag->assign(2, "two");
  StringBag* copy = StringBag::make_copy(ti_, *bag, (1u << 0) | (1u << 2), 32);
  EXPECT_EQ(copy->get(0), "zero");
  EXPECT_EQ(copy->get(1), "");
  EXPECT_EQ(copy->get(2), "two");
  // Room for more.
  EXPECT_TRUE(copy->assign(5, "fivefive"));
  Arena::deallocate(bag);
  Arena::deallocate(copy);
}

TEST_F(StringBagTest, EmptySuffixIsValid) {
  // Key "ABCDEFGH" + layer link vs suffix "" distinction: an empty suffix is
  // representable (used when a 9..16-byte key's tail is empty after a shift —
  // degenerate but legal for binary keys).
  StringBag* bag = StringBag::make(ti_, 15, 16);
  EXPECT_TRUE(bag->assign(4, ""));
  EXPECT_EQ(bag->get(4), "");
  EXPECT_TRUE(bag->equals(4, ""));
  Arena::deallocate(bag);
}

TEST_F(StringBagTest, AdaptiveGrowthKeepsMemoryModest) {
  // The adaptive policy (start small, grow on demand) should use far less
  // than the fixed worst case (15 slots x max suffix) for short-key loads.
  StringBag* bag = StringBag::make(ti_, 15, 2 + 24);
  EXPECT_TRUE(bag->assign(0, "ab"));
  EXPECT_LT(bag->capacity(), 15u * 256u / 4u);
  Arena::deallocate(bag);
}

}  // namespace
}  // namespace masstree
