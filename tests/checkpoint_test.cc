// Checkpoint subsystem tests (§5): part-file format round-trips, full
// checkpoint -> restore against an oracle, log-tail replay on top of a
// checkpoint, and recovery after torn/truncated checkpoint files or an
// interrupted (manifest-less) checkpoint.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "kvstore/store.h"
#include "support/test_support.h"

namespace masstree {
namespace {

namespace fs = std::filesystem;
namespace ts = test_support;

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    path_ = fs::temp_directory_path() / ("masstree-ckpt-test-" + std::string(tag));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

using RowOracle = std::map<std::string, std::vector<std::string>>;

// Random multi-column rows over adversarial keys: shared prefixes (layer
// creation), binary bytes, slice-boundary lengths, and 0..3 columns.
std::string oracle_key(Rng& rng, uint64_t i) {
  switch (i % 4) {
    case 0:
      return "plain" + ts::padded_key(i);
    case 1:
      return std::string(24, 'p') + std::to_string(i);  // three shared layers
    case 2: {
      std::string k = "bin";
      for (int j = 0; j < static_cast<int>(i % 14); ++j) {
        k.push_back(static_cast<char>(rng.next_range(3)));
      }
      return k + std::to_string(i);
    }
    default:
      return std::string(i % 17, 'x') + std::to_string(i);
  }
}

void fill_store(Store& store, Store::Session& s, RowOracle* oracle, int nkeys,
                uint64_t salt) {
  Rng rng = ts::seeded_rng(salt);
  for (int i = 0; i < nkeys; ++i) {
    std::string key = oracle_key(rng, i);
    unsigned ncols = 1 + static_cast<unsigned>(rng.next_range(3));
    std::vector<ColumnUpdate> updates;
    std::vector<std::string> cols(ncols);
    for (unsigned c = 0; c < ncols; ++c) {
      cols[c].assign(rng.next_range(40), static_cast<char>('a' + (i + c) % 26));
      cols[c] += std::to_string(rng.next());
    }
    for (unsigned c = 0; c < ncols; ++c) {
      updates.push_back(ColumnUpdate{c, cols[c]});
    }
    store.put(key, updates, s);
    (*oracle)[key] = std::move(cols);
  }
}

void expect_store_matches(Store& store, const RowOracle& oracle) {
  Store::Session s(store, 0);
  ASSERT_EQ(store.stats().keys, oracle.size());
  for (const auto& [key, cols] : oracle) {
    std::vector<std::string> got;
    ASSERT_TRUE(store.get(key, {}, &got, s)) << "missing key=" << key;
    ASSERT_EQ(got, cols) << "wrong columns for key=" << key;
  }
  ASSERT_TRUE(ts::rep_ok(store.tree()));
}

// ---------------- part-file format ----------------

TEST(CheckpointFormat, PartFileRoundTripsBinaryRecords) {
  TempDir dir("format");
  std::string path = checkpoint_part_path(dir.str(), 0);
  {
    CheckpointPartWriter out(path);
    ASSERT_TRUE(out.ok());
    out.add(std::string("k\0ey", 4), 7, {"colA", std::string("\0\1\2", 3), ""});
    out.add("", 8, {});  // empty key, zero columns
    out.add(std::string(300, 'L'), 9, {std::string(5000, 'v')});
    EXPECT_EQ(out.records(), 3u);
    out.finish();
  }
  auto records = read_checkpoint_part(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, std::string("k\0ey", 4));
  EXPECT_EQ(records[0].row_version, 7u);
  ASSERT_EQ(records[0].cols.size(), 3u);
  EXPECT_EQ(records[0].cols[1], std::string("\0\1\2", 3));
  EXPECT_EQ(records[0].cols[2], "");
  EXPECT_EQ(records[1].key, "");
  EXPECT_TRUE(records[1].cols.empty());
  EXPECT_EQ(records[2].key, std::string(300, 'L'));
  EXPECT_EQ(records[2].cols[0], std::string(5000, 'v'));
}

TEST(CheckpointFormat, CompressibleColumnsShrinkPartFile) {
  TempDir dir("compress");
  std::string path = checkpoint_part_path(dir.str(), 0);
  std::string big;
  for (int i = 0; i < 500; ++i) {
    big += "row-payload-" + std::to_string(i % 9);
  }
  std::string incompressible;
  Rng rng = ts::seeded_rng(42);
  for (int i = 0; i < 4000; ++i) {
    incompressible += static_cast<char>(rng.next());
  }
  {
    CheckpointPartWriter out(path);
    ASSERT_TRUE(out.ok());
    out.add("compressible", 1, {big});
    out.add("random", 2, {incompressible});  // bail-out path: stored raw
    out.add("small", 3, {"tiny"});           // below threshold: stored raw
    out.finish();
  }
  // The compressible row dominates raw size; the file must be far smaller.
  EXPECT_LT(fs::file_size(path), big.size() / 2 + incompressible.size() + 256);
  auto records = read_checkpoint_part(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].cols[0], big);
  EXPECT_EQ(records[1].cols[0], incompressible);
  EXPECT_EQ(records[2].cols[0], "tiny");
}

// Headerless part files from a pre-v2 build must still restore. The bytes
// are hand-built to the old fixed-width layout (u32 klen | key | u64
// row_version | u16 ncols | (u32 len | bytes)* | u32 crc32(record)).
TEST(CheckpointFormat, LegacyV1PartStillReads) {
  TempDir dir("legacy");
  std::string path = checkpoint_part_path(dir.str(), 0);
  std::string data;
  auto raw = [&data](const auto& v) {
    data.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto add_v1 = [&](const std::string& key, uint64_t rv,
                    const std::vector<std::string>& cols) {
    size_t start = data.size();
    raw(static_cast<uint32_t>(key.size()));
    data += key;
    raw(rv);
    raw(static_cast<uint16_t>(cols.size()));
    for (const auto& c : cols) {
      raw(static_cast<uint32_t>(c.size()));
      data += c;
    }
    raw(crc32(data.data() + start, data.size() - start));
  };
  add_v1("old-key", 5, {"colA", std::string(200, 'z')});
  add_v1("old-key2", 6, {});
  std::ofstream(path, std::ios::binary) << data;
  auto records = read_checkpoint_part(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "old-key");
  EXPECT_EQ(records[0].row_version, 5u);
  ASSERT_EQ(records[0].cols.size(), 2u);
  EXPECT_EQ(records[0].cols[1], std::string(200, 'z'));
  EXPECT_EQ(records[1].key, "old-key2");
}

TEST(CheckpointFormat, UnknownPartVersionThrows) {
  TempDir dir("future");
  std::string path = checkpoint_part_path(dir.str(), 0);
  {
    CheckpointPartWriter out(path);
    out.add("k", 1, {"v"});
    out.finish();
  }
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);
  f.put('\x09');  // future format version
  f.close();
  EXPECT_THROW(read_checkpoint_part(path), std::runtime_error);
  // A torn header (file shorter than 5 bytes) reads as empty, not a throw.
  std::string torn = checkpoint_part_path(dir.str(), 1);
  std::ofstream(torn, std::ios::binary) << "MTCK";
  EXPECT_TRUE(read_checkpoint_part(torn).empty());
}

TEST(CheckpointFormat, CorruptedRecordStopsCleanly) {
  TempDir dir("corrupt");
  std::string path = checkpoint_part_path(dir.str(), 0);
  {
    CheckpointPartWriter out(path);
    out.add("first", 1, {"v1"});
    out.add("second", 2, {"v2"});
    out.finish();
  }
  // Flip one payload byte of the second record; its CRC must reject it.
  auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(size) - 8);
    f.put('!');
  }
  auto records = read_checkpoint_part(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "first");
}

TEST(CheckpointFormat, ManifestRoundTripAndRejection) {
  TempDir dir("manifest");
  CheckpointManifest m;
  m.start_ts_us = 123456;
  m.version_floor = 99;
  m.parts = 4;
  ASSERT_TRUE(write_manifest(dir.str(), m));
  CheckpointManifest got = read_manifest(dir.str());
  EXPECT_TRUE(got.valid);
  EXPECT_EQ(got.start_ts_us, 123456u);
  EXPECT_EQ(got.version_floor, 99u);
  EXPECT_EQ(got.parts, 4u);

  EXPECT_FALSE(read_manifest(dir.str() + "/nonexistent").valid);
  {
    std::ofstream bad(checkpoint_manifest_path(dir.str()), std::ios::trunc);
    bad << "not-a-masstree-checkpoint\n";
  }
  EXPECT_FALSE(read_manifest(dir.str()).valid);
}

// ---------------- checkpoint -> restore round-trip ----------------

TEST(CheckpointRestore, RoundTripRestoresEverything) {
  TempDir ckpt("roundtrip");
  RowOracle oracle;
  {
    Store store;
    Store::Session s(store, 0);
    fill_store(store, s, &oracle, 4000, /*salt=*/1);
    ASSERT_TRUE(store.checkpoint(ckpt.str(), /*nworkers=*/3));
  }
  Store restored;
  Store::RecoveryResult res = restored.recover(ckpt.str(), /*log_dir=*/"", 2);
  EXPECT_TRUE(res.used_checkpoint);
  EXPECT_EQ(res.checkpoint_records, oracle.size());
  EXPECT_EQ(res.log_entries_applied, 0u);
  expect_store_matches(restored, oracle);
}

TEST(CheckpointRestore, LogTailReplaysOnTopOfCheckpoint) {
  TempDir ckpt("tail-ckpt");
  TempDir logs("tail-logs");
  RowOracle oracle;
  {
    Store::Options opt;
    opt.log_dir = logs.str();
    Store store(opt);
    Store::Session s(store, 0);
    fill_store(store, s, &oracle, 2000, /*salt=*/2);
    ASSERT_TRUE(store.checkpoint(ckpt.str(), 2));
    // Post-checkpoint tail: overwrites, fresh keys, and removals, all of
    // which must come back from the log, not the checkpoint.
    Rng rng = ts::seeded_rng(3);
    for (int i = 0; i < 500; ++i) {
      std::string key = oracle_key(rng, static_cast<uint64_t>(rng.next_range(2000)));
      if (oracle.count(key) != 0 && rng.next_range(3) == 0) {
        store.remove(key, s);
        oracle.erase(key);
      } else {
        std::string v = "tail" + std::to_string(i);
        store.put(key, {{0, v}}, s);
        auto& cols = oracle[key];
        if (cols.empty()) {
          cols.resize(1);
        }
        cols[0] = v;
      }
    }
    store.sync_logs();
  }
  Store::Options opt;
  opt.log_dir = logs.str();
  Store restored(opt);
  Store::RecoveryResult res = restored.recover(ckpt.str(), logs.str(), 2);
  EXPECT_TRUE(res.used_checkpoint);
  EXPECT_GT(res.log_entries_applied, 0u);
  expect_store_matches(restored, oracle);
}

// ---------------- damaged checkpoints ----------------

TEST(CheckpointRestore, TruncatedPartLoadsIntactPrefixOnly) {
  TempDir ckpt("torn");
  RowOracle oracle;
  {
    Store store;
    Store::Session s(store, 0);
    fill_store(store, s, &oracle, 3000, /*salt=*/4);
    ASSERT_TRUE(store.checkpoint(ckpt.str(), 2));
  }
  // Tear part 0 mid-record, as a crashed disk would.
  std::string part0 = checkpoint_part_path(ckpt.str(), 0);
  auto size = fs::file_size(part0);
  ASSERT_GT(size, 100u);
  fs::resize_file(part0, size / 2 + 3);

  Store restored;
  Store::RecoveryResult res = restored.recover(ckpt.str(), "", 2);
  EXPECT_TRUE(res.used_checkpoint);
  EXPECT_LT(res.checkpoint_records, oracle.size());
  EXPECT_GT(res.checkpoint_records, 0u);
  // Every record that did load must be intact — correct columns, no garbage.
  Store::Session s(restored, 0);
  size_t seen = 0;
  restored.getrange(
      "", ~size_t{0}, Store::kAllColumns,
      [&](std::string_view k, std::string_view, const Row* row) {
        ++seen;
        auto it = oracle.find(std::string(k));
        EXPECT_NE(it, oracle.end()) << "recovered key not in oracle";
        if (it != oracle.end()) {
          EXPECT_EQ(row->ncols(), it->second.size());
          for (unsigned c = 0; c < row->ncols() && c < it->second.size(); ++c) {
            EXPECT_EQ(row->col(c), it->second[c]);
          }
        }
        return true;
      },
      s);
  EXPECT_EQ(seen, res.checkpoint_records);
  EXPECT_TRUE(ts::rep_ok(restored.tree()));
}

TEST(CheckpointRestore, InterruptedCheckpointIsInvisible) {
  TempDir ckpt("no-manifest");
  RowOracle oracle;
  {
    Store store;
    Store::Session s(store, 0);
    fill_store(store, s, &oracle, 500, /*salt=*/5);
    ASSERT_TRUE(store.checkpoint(ckpt.str(), 2));
  }
  // A checkpoint that never finished has parts but no MANIFEST.
  fs::remove(checkpoint_manifest_path(ckpt.str()));
  Store restored;
  Store::RecoveryResult res = restored.recover(ckpt.str(), "", 2);
  EXPECT_FALSE(res.used_checkpoint);
  EXPECT_EQ(res.checkpoint_records, 0u);
  EXPECT_EQ(restored.stats().keys, 0u);
}

TEST(CheckpointRestore, CheckpointRunsConcurrentlyWithWrites) {
  // §5: checkpoints proceed while normal puts continue. The checkpoint must
  // capture a superset of pre-checkpoint state and never a torn row.
  TempDir ckpt("concurrent");
  Store store;
  Store::Session s(store, 0);
  RowOracle stable;
  fill_store(store, s, &stable, 1500, /*salt=*/6);

  test_support::ChurnDriver churn;
  std::atomic<uint64_t> churn_i{0};
  std::atomic<unsigned> next_worker{1};
  churn.spawn_with_setup(2, [&](ThreadContext&, Rng&) {
    // One Session per thread (distinct worker ids), built once — the loop
    // body must spend its time racing the checkpoint, not re-registering
    // epoch slots.
    auto ws = std::make_shared<Store::Session>(store, next_worker.fetch_add(1));
    return [&, ws] {
      uint64_t i = churn_i.fetch_add(1);
      store.put("churn/" + ts::padded_key(i), {{0, "c" + std::to_string(i)}}, *ws);
      return true;
    };
  });
  bool ok = store.checkpoint(ckpt.str(), 3);
  churn.stop_and_join();
  ASSERT_TRUE(ok);

  Store restored;
  Store::RecoveryResult res = restored.recover(ckpt.str(), "", 2);
  EXPECT_TRUE(res.used_checkpoint);
  EXPECT_GE(res.checkpoint_records, stable.size());
  // All stable rows must be present and exact.
  Store::Session rs(restored, 0);
  for (const auto& [key, cols] : stable) {
    std::vector<std::string> got;
    ASSERT_TRUE(restored.get(key, {}, &got, rs)) << key;
    ASSERT_EQ(got, cols) << key;
  }
  EXPECT_TRUE(ts::rep_ok(restored.tree()));
}

}  // namespace
}  // namespace masstree
