// Epoch-based reclamation tests (§4.6.1).

#include "epoch/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace masstree {
namespace {

std::atomic<int> g_deleted{0};
void CountingDeleter(void* p) {
  ++g_deleted;
  delete static_cast<int*>(p);
}

TEST(Epoch, RegisterUnregister) {
  EpochManager mgr;
  EpochSlot* a = mgr.register_thread();
  EpochSlot* b = mgr.register_thread();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  mgr.unregister_thread(a);
  mgr.unregister_thread(b);
  // Slot is reusable after release.
  EpochSlot* c = mgr.register_thread();
  EXPECT_TRUE(c == a || c == b);
  mgr.unregister_thread(c);
}

TEST(Epoch, GuardPublishesAndClears) {
  EpochManager mgr;
  EpochSlot* s = mgr.register_thread();
  EXPECT_EQ(s->active.load(), 0u);
  {
    EpochGuard g(*s);
    EXPECT_NE(s->active.load(), 0u);
    {
      EpochGuard nested(*s);  // re-entrant
      EXPECT_NE(s->active.load(), 0u);
    }
    EXPECT_NE(s->active.load(), 0u);  // still inside the outer guard
  }
  EXPECT_EQ(s->active.load(), 0u);
  mgr.unregister_thread(s);
}

TEST(Epoch, RetireFreedWhenQuiescent) {
  EpochManager mgr;
  EpochSlot* s = mgr.register_thread();
  g_deleted = 0;
  {
    EpochGuard g(*s);
    mgr.retire(*s, new int(7), &CountingDeleter);
  }
  // Two-epoch grace period: one advance past the retire epoch is not enough
  // (a reader entering at retire+1 may predate the unlink's visibility).
  mgr.advance();
  EXPECT_EQ(mgr.reclaim(*s), 0u);
  EXPECT_EQ(g_deleted.load(), 0);
  mgr.advance();
  EXPECT_EQ(mgr.reclaim(*s), 1u);
  EXPECT_EQ(g_deleted.load(), 1);
  mgr.unregister_thread(s);
}

TEST(Epoch, ActiveReaderBlocksReclaim) {
  EpochManager mgr;
  EpochSlot* writer = mgr.register_thread();
  EpochSlot* reader = mgr.register_thread();
  g_deleted = 0;

  auto* reader_guard = new EpochGuard(*reader);  // reader enters and stays
  {
    EpochGuard g(*writer);
    mgr.retire(*writer, new int(1), &CountingDeleter);
  }
  mgr.advance();
  // The reader entered before (or at) the retire epoch: nothing can be freed.
  EXPECT_EQ(mgr.reclaim(*writer), 0u);
  EXPECT_EQ(g_deleted.load(), 0);

  delete reader_guard;  // reader leaves
  mgr.advance();
  EXPECT_EQ(mgr.reclaim(*writer), 1u);
  EXPECT_EQ(g_deleted.load(), 1);

  mgr.unregister_thread(writer);
  mgr.unregister_thread(reader);
}

TEST(Epoch, MinActiveEpochIgnoresQuiescent) {
  EpochManager mgr;
  EpochSlot* a = mgr.register_thread();
  EpochSlot* b = mgr.register_thread();
  uint64_t e0 = mgr.current_epoch();
  EXPECT_EQ(mgr.min_active_epoch(), e0);  // nobody active
  {
    EpochGuard g(*a);
    mgr.advance();
    mgr.advance();
    // a pinned an older epoch; b quiescent.
    EXPECT_LE(mgr.min_active_epoch(), e0 + 2);
    EXPECT_GE(mgr.min_active_epoch(), e0);
  }
  EXPECT_EQ(mgr.min_active_epoch(), mgr.current_epoch());
  mgr.unregister_thread(a);
  mgr.unregister_thread(b);
}

TEST(Epoch, UnregisterDrainsLimbo) {
  EpochManager mgr;
  EpochSlot* s = mgr.register_thread();
  g_deleted = 0;
  {
    EpochGuard g(*s);
    for (int i = 0; i < 10; ++i) {
      mgr.retire(*s, new int(i), &CountingDeleter);
    }
  }
  mgr.unregister_thread(s);  // must free everything before returning
  EXPECT_EQ(g_deleted.load(), 10);
}

// Concurrency: readers repeatedly enter epochs and dereference a shared
// pointer that a writer keeps swapping and retiring. With correct epoch
// protection this cannot touch freed memory (validated under ASan in
// dedicated runs; here we check liveness and final counts).
TEST(Epoch, SwapStress) {
  EpochManager mgr;
  g_deleted = 0;
  std::atomic<int*> shared{new int(0)};
  std::atomic<bool> stop{false};
  constexpr int kSwaps = 3000;

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      EpochSlot* s = mgr.register_thread();
      uint64_t sum = 0;
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard g(*s);
        int* p = shared.load(std::memory_order_acquire);
        sum += static_cast<uint64_t>(*p);  // must be alive
      }
      (void)sum;
      mgr.unregister_thread(s);
    });
  }

  {
    EpochSlot* s = mgr.register_thread();
    for (int i = 1; i <= kSwaps; ++i) {
      EpochGuard g(*s);
      int* fresh = new int(i);
      int* old = shared.exchange(fresh, std::memory_order_acq_rel);
      mgr.retire(*s, old, &CountingDeleter);
    }
    mgr.unregister_thread(s);
  }
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  delete shared.load();
  EXPECT_EQ(g_deleted.load(), kSwaps);
}

}  // namespace
}  // namespace masstree
