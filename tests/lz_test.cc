// In-repo LZ4-block-style compressor tests: round-trips across value
// shapes (compressible, incompressible, pathological repeats), an
// every-size sweep, and fuzz-style safety of the bounded decoder against
// truncated and bit-flipped input (it must fail cleanly, never read or
// write out of bounds — the ASan/UBSan lanes enforce the "never").

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/lz.h"

namespace masstree {
namespace {

// Deterministic xorshift so failures reproduce (test code cannot rely on
// wall-clock seeds anyway: reproducibility beats coverage variance).
struct Rng {
  uint64_t s = 0x9e3779b97f4a7c15ull;
  uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

std::string RoundTrip(const std::string& raw, bool* compressed_out = nullptr) {
  std::string comp(lz::compress_bound(raw.size()), '\0');
  size_t csize =
      lz::compress(raw.data(), raw.size(), comp.data(), comp.size());
  if (compressed_out != nullptr) {
    *compressed_out = csize != 0;
  }
  if (csize == 0) {
    return raw;  // bail-out: caller stores raw
  }
  std::string back(raw.size(), '\0');
  EXPECT_TRUE(lz::decompress(comp.data(), csize, back.data(), back.size()));
  return back;
}

TEST(Lz, EmptyAndTiny) {
  EXPECT_EQ(RoundTrip(""), "");
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abcdefgh"), "abcdefgh");
}

TEST(Lz, PathologicalRepeats) {
  EXPECT_EQ(RoundTrip(std::string(100000, 'x')), std::string(100000, 'x'));
  std::string two;
  for (int i = 0; i < 50000; ++i) {
    two += (i & 1) ? 'a' : 'b';
  }
  EXPECT_EQ(RoundTrip(two), two);
  std::string period3;
  for (int i = 0; i < 9999; ++i) {
    period3 += "abc"[i % 3];
  }
  EXPECT_EQ(RoundTrip(period3), period3);
  // Highly repetitive input must actually compress hard.
  std::string comp(lz::compress_bound(100000), '\0');
  size_t csize = lz::compress(std::string(100000, 'x').data(), 100000,
                              comp.data(), comp.size());
  ASSERT_GT(csize, 0u);
  EXPECT_LT(csize, 1000u);
}

TEST(Lz, IncompressibleBailsOutWithTightBudget) {
  Rng rng;
  std::string raw(4096, '\0');
  for (auto& c : raw) {
    c = static_cast<char>(rng.next());
  }
  // The log's calling convention: dst_cap = n - 1, so incompressible data
  // returns 0 (stored raw) instead of expanding.
  std::string comp(raw.size() - 1, '\0');
  EXPECT_EQ(lz::compress(raw.data(), raw.size(), comp.data(), comp.size()),
            0u);
  // With a generous budget it still round-trips whatever it produces.
  EXPECT_EQ(RoundTrip(raw), raw);
}

TEST(Lz, MixedContentRoundTrip) {
  Rng rng;
  std::string raw;
  for (int block = 0; block < 200; ++block) {
    if (rng.next() & 1) {
      raw.append(32 + rng.next() % 200, static_cast<char>('A' + block % 26));
    } else {
      for (unsigned i = 0; i < 64; ++i) {
        raw += static_cast<char>(rng.next());
      }
    }
  }
  bool compressed = false;
  EXPECT_EQ(RoundTrip(raw, &compressed), raw);
  EXPECT_TRUE(compressed);
}

// Every size 0..600 in three shapes: catches off-by-ones around the
// min-match and tail-literal cutoffs.
TEST(Lz, EverySmallSizeSweep) {
  Rng rng;
  for (size_t n = 0; n <= 600; ++n) {
    std::string rep(n, 'r');
    EXPECT_EQ(RoundTrip(rep), rep) << "repeat n=" << n;
    std::string cyc;
    for (size_t i = 0; i < n; ++i) {
      cyc += static_cast<char>('a' + i % 13);
    }
    EXPECT_EQ(RoundTrip(cyc), cyc) << "cyclic n=" << n;
    std::string rnd;
    for (size_t i = 0; i < n; ++i) {
      rnd += static_cast<char>(rng.next());
    }
    EXPECT_EQ(RoundTrip(rnd), rnd) << "random n=" << n;
  }
}

TEST(Lz, DecoderRejectsTruncatedInput) {
  std::string raw;
  for (int i = 0; i < 500; ++i) {
    raw += "some repeating log value payload " + std::to_string(i % 4);
  }
  std::string comp(lz::compress_bound(raw.size()), '\0');
  size_t csize =
      lz::compress(raw.data(), raw.size(), comp.data(), comp.size());
  ASSERT_GT(csize, 0u);
  std::string back(raw.size(), '\0');
  // Every strict prefix must fail cleanly: raw_n bytes were promised and
  // cannot be produced.
  for (size_t cut = 0; cut < csize; ++cut) {
    EXPECT_FALSE(lz::decompress(comp.data(), cut, back.data(), back.size()))
        << "cut=" << cut;
  }
  EXPECT_TRUE(lz::decompress(comp.data(), csize, back.data(), back.size()));
  EXPECT_EQ(back, raw);
}

TEST(Lz, DecoderSurvivesBitFlips) {
  std::string raw;
  for (int i = 0; i < 300; ++i) {
    raw += "value-" + std::to_string(i) + std::string(i % 17, '=');
  }
  std::string comp(lz::compress_bound(raw.size()), '\0');
  size_t csize =
      lz::compress(raw.data(), raw.size(), comp.data(), comp.size());
  ASSERT_GT(csize, 0u);
  comp.resize(csize);
  std::string back(raw.size(), '\0');
  // Flip every byte (all 8 bits at once) one position at a time. The
  // decoder either fails or produces raw.size() bytes of garbage — both
  // fine — but it must never touch memory outside the two buffers.
  for (size_t i = 0; i < csize; ++i) {
    std::string evil = comp;
    evil[i] = static_cast<char>(~evil[i]);
    (void)lz::decompress(evil.data(), evil.size(), back.data(), back.size());
  }
  // Wrong raw_n promises (too small and too large) must also fail cleanly.
  std::string small_buf(raw.size() / 2, '\0');
  EXPECT_FALSE(lz::decompress(comp.data(), csize, small_buf.data(),
                              small_buf.size()));
  std::string big(raw.size() * 2, '\0');
  EXPECT_FALSE(lz::decompress(comp.data(), csize, big.data(), big.size()));
}

TEST(Lz, DecoderRejectsBogusOffsets) {
  // Hand-built stream: literal run of 4 then a match with offset 9000
  // pointing far before the output start.
  std::string evil;
  evil.push_back('\x4f');  // token: 4 literals, match len 15+
  evil += "abcd";
  evil.push_back('\x28');  // offset 9000 = 0x2328 little-endian
  evil.push_back('\x23');
  evil.push_back('\x00');  // match length extension terminator
  std::string back(64, '\0');
  EXPECT_FALSE(
      lz::decompress(evil.data(), evil.size(), back.data(), back.size()));
  // Offset 0 is always invalid.
  std::string zero;
  zero.push_back('\x40');  // 4 literals, minimal match
  zero += "abcd";
  zero.push_back('\x00');
  zero.push_back('\x00');
  EXPECT_FALSE(
      lz::decompress(zero.data(), zero.size(), back.data(), back.size()));
}

}  // namespace
}  // namespace masstree
