#include "support/test_support.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace masstree {
namespace test_support {

uint64_t base_seed() {
  static std::once_flag once;
  static uint64_t seed = 0;
  std::call_once(once, [] {
    const char* env = ::getenv("MT_TEST_SEED");
    seed = env != nullptr ? ::strtoull(env, nullptr, 0) : 0xC0FFEE0Dull;
    std::printf("[test_support] base seed = 0x%llx (override with MT_TEST_SEED)\n",
                static_cast<unsigned long long>(seed));
  });
  return seed;
}

Rng seeded_rng(uint64_t salt) {
  // splitmix the salt so nearby salts land in unrelated streams.
  uint64_t z = salt + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return Rng(base_seed() ^ (z ^ (z >> 31)));
}

std::string padded_key(uint64_t i, const char* fmt) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(i));
  return buf;
}

}  // namespace test_support
}  // namespace masstree
