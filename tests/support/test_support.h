// Shared test-support library: deterministic RNG seeding, std::map oracle
// diffing, a concurrent-churn driver, and the check_rep() structural
// invariant walker for Masstree. Extracted from the per-suite boilerplate so
// every test exercises the same, strictest version of each harness.

#ifndef MASSTREE_TESTS_SUPPORT_TEST_SUPPORT_H_
#define MASSTREE_TESTS_SUPPORT_TEST_SUPPORT_H_

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tree.h"
#include "util/rand.h"

namespace masstree {
namespace test_support {

// ---------------------------------------------------------------------------
// Deterministic seeding.
//
// Every randomized test derives its Rng from base_seed() xor a per-use salt.
// The default base seed is fixed, so runs are reproducible; set MT_TEST_SEED
// to explore other deterministic universes (the chosen seed is logged once so
// a CI failure can be replayed exactly).
uint64_t base_seed();
Rng seeded_rng(uint64_t salt);

// ---------------------------------------------------------------------------
// Key helpers shared across suites.
std::string padded_key(uint64_t i, const char* fmt = "%010llu");

// ---------------------------------------------------------------------------
// Oracle diffing: a std::map shadow model with the repeated
// "EXPECT insert-newness / verify every key" loops in one place.
class Oracle {
 public:
  using Map = std::map<std::string, uint64_t>;

  // Record an insert/update; returns whether the key was new. Callers
  // EXPECT_EQ this against the structure under test.
  bool note_insert(const std::string& key, uint64_t value) {
    bool fresh = map_.find(key) == map_.end();
    map_[key] = value;
    return fresh;
  }

  // Record a removal; returns whether the key was present.
  bool note_remove(const std::string& key) { return map_.erase(key) > 0; }

  bool contains(const std::string& key) const { return map_.count(key) > 0; }
  size_t size() const { return map_.size(); }
  const Map& map() const { return map_; }

  // Verify every oracle key is present with the right value.
  // `get(key, &value)` must behave like Tree::get.
  template <typename GetFn>
  void verify_all(GetFn&& get, const char* context = "") const {
    for (const auto& [k, v] : map_) {
      uint64_t got = 0;
      ASSERT_TRUE(get(k, &got)) << context << " missing key=" << k;
      ASSERT_EQ(got, v) << context << " wrong value for key=" << k;
    }
  }

 private:
  Map map_;
};

// Full-state equivalence of a Masstree against an oracle: point lookups for
// every key, one complete ordered scan, and a key-count cross-check.
template <typename C>
void check_tree_matches_oracle(const BasicTree<C>& tree, const Oracle& oracle,
                               ThreadContext& ti, const char* context = "") {
  oracle.verify_all(
      [&](const std::string& k, uint64_t* v) { return tree.get(k, v, ti); }, context);
  std::vector<std::pair<std::string, uint64_t>> scanned;
  tree.scan(
      "", ~size_t{0},
      [&](std::string_view k, uint64_t v) {
        scanned.emplace_back(std::string(k), v);
        return true;
      },
      ti);
  ASSERT_EQ(scanned.size(), oracle.size()) << context;
  auto it = oracle.map().begin();
  for (size_t i = 0; i < scanned.size(); ++i, ++it) {
    ASSERT_EQ(scanned[i].first, it->first) << context << " scan position " << i;
    ASSERT_EQ(scanned[i].second, it->second) << context << " scan position " << i;
  }
  ASSERT_EQ(tree.collect_stats().keys, oracle.size()) << context;
}

// ---------------------------------------------------------------------------
// Concurrent-churn driver.
//
// Spawns reader/verifier threads that run `body(ti, rng)` in a loop until
// stopped, counting the iterations where body returns false. The writer side
// runs inline in the test; stop_and_join() returns the failure count.
//
//   ChurnDriver churn;
//   churn.spawn(2, [&](ThreadContext& ti, Rng& rng) { return check(...); });
//   ... mutate the structure ...
//   EXPECT_EQ(churn.stop_and_join(), 0);
class ChurnDriver {
 public:
  using Body = std::function<bool(ThreadContext&, Rng&)>;

  ChurnDriver() = default;
  ChurnDriver(const ChurnDriver&) = delete;
  ChurnDriver& operator=(const ChurnDriver&) = delete;
  ~ChurnDriver() { stop_and_join(); }

  void spawn(int nthreads, Body body) {
    spawn_with_setup(nthreads, [body](ThreadContext& ti, Rng& rng) {
      return [body, &ti, &rng] { return body(ti, rng); };
    });
  }

  // Like spawn(), but `setup(ti, rng)` runs once per thread and returns the
  // iteration body — for workloads that need per-thread state beyond the
  // provided context (e.g. a Store::Session) built once, not per iteration.
  using Setup = std::function<std::function<bool()>(ThreadContext&, Rng&)>;
  void spawn_with_setup(int nthreads, Setup setup) {
    if (threads_.empty()) {
      // Fresh round: a driver reused after stop_and_join() must not hand new
      // threads an already-set stop flag (they would exit without running)
      // or inherit the previous round's failure count.
      stop_.store(false, std::memory_order_release);
      failures_.store(0, std::memory_order_relaxed);
    }
    for (int t = 0; t < nthreads; ++t) {
      uint64_t salt = 0x434855524Eull + threads_.size();  // "CHURN" + index
      threads_.emplace_back([this, setup, salt] {
        ThreadContext ti;
        Rng rng = seeded_rng(salt);
        std::function<bool()> body = setup(ti, rng);
        while (!stop_.load(std::memory_order_acquire)) {
          if (!body()) {
            failures_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }

  // Signal stop, join every thread, and return the accumulated failures.
  int stop_and_join() {
    stop_.store(true, std::memory_order_release);
    for (auto& th : threads_) {
      th.join();
    }
    threads_.clear();
    return failures_.load();
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<int> failures_{0};
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// check_rep(): quiescent structural-invariant walker (test-time analogue of
// masstree-beta's check()). Verifies, over every trie layer:
//
//   * version sanity: reachable nodes are neither locked, dirty, nor deleted;
//     each layer's true root carries the root flag;
//   * permutation consistency: the 15 subfields are a permutation of 0..14
//     and nkeys <= width;
//   * keyslice ordering: border entries strictly increase by
//     (slice, keylenx ord), with at most one "key continues" entry per slice;
//   * interior separators strictly increase, children are non-null, child
//     parent pointers point back, and every reachable slice respects the
//     [lo, hi) bounds induced by the separators and split lowkeys;
//   * border linked list: the left-to-right DFS order of border nodes matches
//     the next/prev chain;
//   * keylenx values are legal and never the transient UNSTABLE marker;
//   * suffixed slots have a suffix bag;
//   * layer links resolve (via parent chasing, §4.6.4) to a live root.
//
// Returns the list of violations (empty = healthy). Use rep_ok() in tests.
template <typename C>
std::vector<std::string> check_rep(const BasicTree<C>& tree);

// gtest-friendly wrapper: prints every violation on failure.
template <typename C>
::testing::AssertionResult rep_ok(const BasicTree<C>& tree) {
  std::vector<std::string> violations = check_rep(tree);
  if (violations.empty()) {
    return ::testing::AssertionSuccess();
  }
  ::testing::AssertionResult res = ::testing::AssertionFailure();
  res << "check_rep found " << violations.size() << " violation(s):";
  for (const auto& v : violations) {
    res << "\n  " << v;
  }
  return res;
}

// ------------------------- implementation -------------------------

namespace detail {

template <typename C>
class RepWalker {
 public:
  using Node = NodeBase<C>;
  using Border = BorderNode<C>;
  using Interior = InteriorNode<C>;

  std::vector<std::string> run(const BasicTree<C>& tree) {
    walk_layer(tree.root_for_testing(), /*depth=*/0, "root");
    return std::move(violations_);
  }

 private:
  static constexpr uint64_t kNoBound = ~uint64_t{0};

  void fail(const std::string& where, const std::string& what) {
    if (violations_.size() < 64) {
      violations_.push_back(where + ": " + what);
    }
  }

  // Climb parent pointers from a stored (possibly stale, §4.6.4) layer link
  // to the layer's true root.
  Node* resolve_root(Node* n, const std::string& where) {
    int hops = 0;
    while (n != nullptr && !n->version().load().is_root()) {
      if (++hops > 64) {
        fail(where, "layer root unreachable after 64 parent hops");
        return nullptr;
      }
      Node* p = n->parent();
      if (p == nullptr) {
        fail(where, "non-root layer entry with null parent");
        return nullptr;
      }
      n = p;
    }
    return n;
  }

  void walk_layer(Node* entry, int depth, const std::string& where) {
    if (depth > 64) {
      fail(where, "layer nesting deeper than 64");
      return;
    }
    Node* root = resolve_root(entry, where);
    if (root == nullptr) {
      fail(where, "layer has no root");
      return;
    }
    std::vector<const Border*> borders;
    walk_node(root, depth, kNoBound, kNoBound, where, &borders);
    check_border_chain(borders, where);
  }

  // lo inclusive (kNoBound = -inf), hi exclusive (kNoBound = +inf).
  void walk_node(Node* n, int depth, uint64_t lo, uint64_t hi, const std::string& where,
                 std::vector<const Border*>* borders) {
    // A corrupted child pointer cycling back to an ancestor must become a
    // reported violation, not a stack overflow.
    if (!visited_.insert(n).second) {
      fail(where, "node reachable twice (cycle or shared subtree)");
      return;
    }
    VersionValue v = n->version().load();
    if (v.locked() || v.dirty()) {
      fail(where, "reachable node is locked/dirty in a quiescent tree");
    }
    if (v.deleted()) {
      fail(where, "reachable node is marked deleted");
      return;
    }
    if (n->is_border()) {
      walk_border(n->as_border(), depth, lo, hi, where);
      borders->push_back(n->as_border());
      return;
    }
    const Interior* in = n->as_interior();
    int nk = in->nkeys();
    if (nk < 0 || nk > Interior::kWidth) {
      fail(where, "interior nkeys out of range: " + std::to_string(nk));
      return;
    }
    for (int i = 1; i < nk; ++i) {
      if (in->key(i - 1) >= in->key(i)) {
        fail(where, "interior separators not strictly increasing at " + std::to_string(i));
      }
    }
    for (int i = 0; i <= nk; ++i) {
      Node* child = in->child(i);
      std::string cw = where + "/i" + std::to_string(i);
      if (child == nullptr) {
        fail(cw, "null child pointer");
        continue;
      }
      if (child->parent() != n) {
        fail(cw, "child's parent pointer does not point back");
      }
      if (child->version().load().is_root()) {
        fail(cw, "non-root node carries the root flag");
      }
      uint64_t clo = i == 0 ? lo : in->key(i - 1);
      uint64_t chi = i == nk ? hi : in->key(i);
      walk_node(child, depth, clo, chi, cw, borders);
    }
  }

  void walk_border(const Border* b, int depth, uint64_t lo, uint64_t hi,
                   const std::string& where) {
    Permuter perm = b->permutation();
    // Permutation consistency: count nibble in range, subfields a permutation.
    if (perm.size() < 0 || perm.size() > Border::kWidth) {
      fail(where, "permutation nkeys out of range: " + std::to_string(perm.size()));
      return;
    }
    std::set<int> slots;
    for (int i = 0; i < Permuter::kMaxWidth; ++i) {
      int s = perm.get(i);
      if (s < 0 || s >= Permuter::kMaxWidth || !slots.insert(s).second) {
        fail(where, "permutation subfields are not a permutation of 0..14");
        return;
      }
    }
    // Keyslice ordering + per-slot checks.
    bool have_prev = false;
    uint64_t prev_slice = 0;
    int prev_ord = 0;
    for (int i = 0; i < perm.size(); ++i) {
      int slot = perm.get(i);
      uint64_t slice = b->slice(slot);
      uint8_t kx = b->keylenx(slot);
      std::string sw = where + "/s" + std::to_string(slot);
      if (kx > kKeylenxUnstableLayer) {
        fail(sw, "illegal keylenx " + std::to_string(kx));
        continue;
      }
      if (keylenx_is_unstable(kx)) {
        fail(sw, "UNSTABLE keylenx in a quiescent tree");
        continue;
      }
      int ord = keylenx_ord(kx);
      if (have_prev &&
          (slice < prev_slice || (slice == prev_slice && ord <= prev_ord))) {
        std::ostringstream os;
        os << "entries not strictly increasing by (slice, ord): "
           << std::hex << prev_slice << std::dec << "/" << prev_ord << " then "
           << std::hex << slice << std::dec << "/" << ord;
        fail(where, os.str());
      }
      have_prev = true;
      prev_slice = slice;
      prev_ord = ord;
      if (lo != kNoBound && slice < lo) {
        fail(sw, "slice below the subtree's lower bound");
      }
      if (hi != kNoBound && slice >= hi) {
        fail(sw, "slice at or above the subtree's upper bound");
      }
      if (keylenx_has_suffix(kx)) {
        if (b->suffixes() == nullptr) {
          fail(sw, "suffixed slot but no suffix bag");
        } else if (b->suffixes()->get(slot).empty()) {
          // A zero-length suffix would mean the key ends at the slice
          // boundary, which is keylenx 8, not the suffix encoding.
          fail(sw, "suffixed slot with empty suffix");
        }
      }
      if (keylenx_is_layer(kx)) {
        Node* sub = const_cast<Border*>(b)->layer(slot);
        if (sub == nullptr) {
          fail(sw, "layer link is null");
        } else {
          walk_layer(sub, depth + 1, sw);
        }
      }
    }
  }

  // The left-to-right DFS order of border nodes must match the next/prev
  // chain, and lowkeys must strictly increase along it. (A border's contents
  // may legitimately dip below its own immutable lowkey: deleting a parent's
  // leftmost child hands the dead range to the RIGHT sibling, §4.6.5.)
  void check_border_chain(const std::vector<const Border*>& borders,
                          const std::string& where) {
    for (size_t i = 0; i < borders.size(); ++i) {
      const Border* b = borders[i];
      const Border* expect_next = i + 1 < borders.size() ? borders[i + 1] : nullptr;
      if (b->next() != expect_next) {
        fail(where, "border next-chain does not match tree order at position " +
                        std::to_string(i));
      }
      const Border* expect_prev = i == 0 ? nullptr : borders[i - 1];
      if (b->prev() != expect_prev) {
        fail(where, "border prev-chain does not match tree order at position " +
                        std::to_string(i));
      }
      // The leftmost border never gets an explicit lowkey (it stays at the
      // 0 "-inf" sentinel) and split separators are always > 0, so strict
      // ordering must hold from the very first pair.
      if (i >= 1 && borders[i - 1]->lowkey() >= b->lowkey()) {
        fail(where, "border lowkeys not strictly increasing at position " +
                        std::to_string(i));
      }
    }
  }

  std::vector<std::string> violations_;
  std::set<const void*> visited_;
};

}  // namespace detail

template <typename C>
std::vector<std::string> check_rep(const BasicTree<C>& tree) {
  return detail::RepWalker<C>().run(tree);
}

}  // namespace test_support
}  // namespace masstree

#endif  // MASSTREE_TESTS_SUPPORT_TEST_SUPPORT_H_
