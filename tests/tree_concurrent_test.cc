// Concurrency tests for the §4.4–§4.6 protocols. The correctness condition
// is the paper's "no lost keys": get(k) returns a correct value regardless of
// concurrent writers; a get racing a put may return the old or new value but
// never garbage, and keys never disappear during splits/removes. Reader-side
// verification runs on the shared ChurnDriver; after every test the tree is
// quiescent and check_rep() audits the structure it left behind.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/tree.h"
#include "support/test_support.h"
#include "util/rand.h"

namespace masstree {
namespace {

namespace ts = test_support;
using ts::padded_key;

// Readers continuously look up keys that are guaranteed present while writers
// insert fresh keys, forcing splits underneath the readers.
TEST(TreeConcurrent, NoLostKeysDuringInserts) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kStable = 2000;
  constexpr int kChurn = 30000;

  for (int i = 0; i < kStable; ++i) {
    uint64_t old;
    tree.insert("stable" + padded_key(i), i + 1, &old, main_ti);
  }

  ts::ChurnDriver churn;
  churn.spawn(2, [&](ThreadContext& ti, Rng& rng) {
    uint64_t i = rng.next_range(kStable);
    uint64_t v = 0;
    return tree.get("stable" + padded_key(i), &v, ti) && v == i + 1;
  });
  {
    ThreadContext ti;
    for (int i = 0; i < kChurn; ++i) {
      uint64_t old;
      tree.insert("churn" + padded_key(i * 2654435761u % 100000000), i, &old, ti);
    }
  }
  EXPECT_EQ(churn.stop_and_join(), 0);
  EXPECT_TRUE(ts::rep_ok(tree));
}

// Concurrent inserters over disjoint key ranges: every key must land.
TEST(TreeConcurrent, DisjointInserters) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t old;
        ASSERT_TRUE(tree.insert(padded_key(static_cast<uint64_t>(t) * kPerThread + i),
                                t * 1000000 + i, &old, ti));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      uint64_t v;
      ASSERT_TRUE(
          tree.get(padded_key(static_cast<uint64_t>(t) * kPerThread + i), &v, main_ti));
      ASSERT_EQ(v, static_cast<uint64_t>(t * 1000000 + i));
    }
  }
  TreeStats st = tree.collect_stats();
  EXPECT_EQ(st.keys, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(ts::rep_ok(tree));
}

// Concurrent inserters racing on the SAME keys: exactly one insert per key
// must win (return true).
TEST(TreeConcurrent, RacingInsertsSameKeys) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kKeys = 10000;
  std::atomic<int> wins{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      int my_wins = 0;
      for (int i = 0; i < kKeys; ++i) {
        uint64_t old;
        if (tree.insert(padded_key(i), 100 + t, &old, ti)) {
          ++my_wins;
        }
      }
      wins += my_wins;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(wins.load(), kKeys);
  for (int i = 0; i < kKeys; ++i) {
    uint64_t v;
    ASSERT_TRUE(tree.get(padded_key(i), &v, main_ti));
    ASSERT_TRUE(v >= 100 && v <= 102);
  }
  EXPECT_TRUE(ts::rep_ok(tree));
}

// The §4.6.5 race: get(k1) vs remove(k1) + put(k2) reusing the slot. The get
// may return k1's old value (overlap) or not-found, but never k2's value.
TEST(TreeConcurrent, RemoveReinsertSlotReuse) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  // A handful of keys that share a border node.
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back("slot" + std::to_string(i));
  }

  ts::ChurnDriver readers;
  readers.spawn(1, [&](ThreadContext& ti, Rng& rng) {
    uint64_t idx = rng.next_range(keys.size());
    uint64_t v;
    // Value encodes the key index; cross-talk means slot-reuse corruption.
    return !(tree.get(keys[idx], &v, ti) && (v >> 32) != idx);
  });
  {
    ThreadContext ti;
    Rng rng = ts::seeded_rng(5);
    for (int round = 0; round < 30000; ++round) {
      uint64_t idx = rng.next_range(keys.size());
      const std::string& k = keys[idx];
      uint64_t old;
      if (rng.next() & 1) {
        tree.insert(k, (idx << 32) | static_cast<unsigned>(round), &old, ti);
      } else {
        tree.remove(k, &old, ti);
      }
    }
  }
  EXPECT_EQ(readers.stop_and_join(), 0);
  EXPECT_TRUE(ts::rep_ok(tree));
}

// Layer-creation race: one thread builds ever-deeper shared-prefix keys while
// readers hammer the conflicting fixed key. The fixed key must stay visible
// through the UNSTABLE->LAYER transition (§4.6.3).
TEST(TreeConcurrent, LayerCreationKeepsKeysVisible) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  const std::string anchor = "prefix00anchor";
  {
    uint64_t old;
    tree.insert(anchor, 777, &old, main_ti);
  }

  ts::ChurnDriver readers;
  readers.spawn(2, [&](ThreadContext& ti, Rng&) {
    uint64_t v = 0;
    return tree.get(anchor, &v, ti) && v == 777;
  });
  {
    ThreadContext ti;
    uint64_t old;
    // Each insert shares a progressively longer prefix with the anchor,
    // repeatedly forcing layer creation along the anchor's path.
    for (int i = 0; i < 5000; ++i) {
      std::string k = "prefix00" + std::string(i % 40, 'a') + std::to_string(i);
      tree.insert(k, i, &old, ti);
    }
  }
  EXPECT_EQ(readers.stop_and_join(), 0);
  EXPECT_TRUE(ts::rep_ok(tree));
}

// Scans running against concurrent inserts must stay sorted, never
// duplicate, and always include keys present for the whole scan.
TEST(TreeConcurrent, ScanUnderChurn) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kStable = 3000;
  for (int i = 0; i < kStable; ++i) {
    uint64_t old;
    tree.insert("s" + padded_key(i), 1, &old, main_ti);
  }

  ts::ChurnDriver scanner;
  scanner.spawn(1, [&](ThreadContext& ti, Rng&) {
    std::string last;
    int stable_seen = 0;
    bool first = true;
    bool ordered = true;
    tree.scan(
        "", 1u << 30,
        [&](std::string_view k, uint64_t) {
          if (!first && std::string_view(last) >= k) {
            ordered = false;  // order violation or duplicate
          }
          last.assign(k);
          first = false;
          if (k.substr(0, 1) == "s") {
            ++stable_seen;
          }
          return true;
        },
        ti);
    // Losing a key that was present throughout also fails the iteration.
    return ordered && stable_seen == kStable;
  });
  {
    ThreadContext ti;
    Rng rng = ts::seeded_rng(77);
    for (int i = 0; i < 20000; ++i) {
      uint64_t old;
      tree.insert("c" + padded_key(rng.next()), i, &old, ti);  // "c" < "s"
    }
  }
  EXPECT_EQ(scanner.stop_and_join(), 0);
  EXPECT_TRUE(ts::rep_ok(tree));
}

// Full mixed workload: inserts, updates, removes, gets, scans, and
// maintenance, all concurrent, with per-thread key ownership for exact
// validation.
TEST(TreeConcurrent, MixedWorkloadStress) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kThreads = 4;
  constexpr int kOps = 40000;
  constexpr int kSpace = 4000;  // keys per thread

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      Rng rng = ts::seeded_rng(31337 + t);
      // Shadow model of this thread's own keys (disjoint from others).
      std::vector<int64_t> mine(kSpace, -1);
      for (int op = 0; op < kOps; ++op) {
        uint64_t i = rng.next_range(kSpace);
        // Long keys with shared prefixes exercise multiple layers.
        std::string key = "worker" + std::to_string(t) + "/item/" + padded_key(i);
        int action = static_cast<int>(rng.next_range(10));
        uint64_t old;
        if (action < 5) {
          // Keep the top bit clear: the shadow model uses -1 as "absent".
          uint64_t v = (rng.next() >> 1) | 1;
          tree.insert(key, v, &old, ti);
          mine[i] = static_cast<int64_t>(v);
        } else if (action < 7) {
          bool removed = tree.remove(key, &old, ti);
          if (removed != (mine[i] >= 0)) {
            ++failures;
          }
          mine[i] = -1;
        } else {
          uint64_t v;
          bool found = tree.get(key, &v, ti);
          if (found != (mine[i] >= 0) ||
              (found && v != static_cast<uint64_t>(mine[i]))) {
            ++failures;
          }
        }
        if ((op & 8191) == 0) {
          tree.run_maintenance(ti);
        }
      }
      // Final verification of every owned key.
      for (int i = 0; i < kSpace; ++i) {
        std::string key = "worker" + std::to_string(t) + "/item/" + padded_key(i);
        uint64_t v;
        bool found = tree.get(key, &v, ti);
        if (found != (mine[i] >= 0) || (found && v != static_cast<uint64_t>(mine[i]))) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  tree.run_maintenance(main_ti);
  EXPECT_TRUE(ts::rep_ok(tree));
}

// Node-deletion protocol: concurrent removals emptying whole subtrees while
// readers traverse. Forwarding pointers must always lead somewhere live.
TEST(TreeConcurrent, MassRemovalUnderReaders) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kKeys = 30000;
  for (int i = 0; i < kKeys; ++i) {
    uint64_t old;
    tree.insert(padded_key(i), i, &old, main_ti);
  }
  std::atomic<int> wrong{0};

  ts::ChurnDriver reader;
  reader.spawn(1, [&](ThreadContext& ti, Rng& rng) {
    uint64_t i = rng.next_range(kKeys);
    uint64_t v;
    return !(tree.get(padded_key(i), &v, ti) && v != i);
  });
  {
    std::vector<std::thread> removers;
    for (int t = 0; t < 2; ++t) {
      removers.emplace_back([&, t] {
        ThreadContext ti;
        for (int i = t; i < kKeys; i += 2) {
          uint64_t old;
          bool removed = tree.remove(padded_key(i), &old, ti);
          if (!removed || old != static_cast<uint64_t>(i)) {
            ++wrong;
          }
        }
      });
    }
    for (auto& th : removers) {
      th.join();
    }
  }
  EXPECT_EQ(reader.stop_and_join(), 0);
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(tree.collect_stats().keys, 0u);
  EXPECT_TRUE(ts::rep_ok(tree));
}

// §6.2's retry-rate observation: with concurrent inserts, split-caused
// retries from the root are orders of magnitude rarer than local retries.
TEST(TreeConcurrent, RetryRatesShape) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  std::atomic<uint64_t> root_retries{0}, ops{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      Rng rng = ts::seeded_rng(t + 1);
      for (int i = 0; i < 50000; ++i) {
        uint64_t old;
        tree.insert(padded_key(rng.next_range(10000000)), i, &old, ti);
        uint64_t v;
        tree.get(padded_key(rng.next_range(10000000)), &v, ti);
      }
      root_retries += ti.counters().get(Counter::kGetRetryFromRoot);
      ops += 100000;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Split retries from the root must be a tiny fraction of operations.
  EXPECT_LT(static_cast<double>(root_retries.load()),
            0.01 * static_cast<double>(ops.load()));
}

}  // namespace
}  // namespace masstree
