// Concurrency tests for the §4.4–§4.6 protocols. The correctness condition
// is the paper's "no lost keys": get(k) returns a correct value regardless of
// concurrent writers; a get racing a put may return the old or new value but
// never garbage, and keys never disappear during splits/removes.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/tree.h"
#include "util/rand.h"

namespace masstree {
namespace {

std::string PaddedKey(uint64_t i, const char* fmt = "%010llu") {
  char buf[32];
  snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(i));
  return buf;
}

// Readers continuously look up keys that are guaranteed present while writers
// insert fresh keys, forcing splits underneath the readers.
TEST(TreeConcurrent, NoLostKeysDuringInserts) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kStable = 2000;
  constexpr int kChurn = 30000;

  for (int i = 0; i < kStable; ++i) {
    uint64_t old;
    tree.insert("stable" + PaddedKey(i), i + 1, &old, main_ti);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> lost{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t i = rng.next_range(kStable);
        uint64_t v = 0;
        if (!tree.get("stable" + PaddedKey(i), &v, ti) || v != i + 1) {
          ++lost;
        }
      }
    });
  }
  {
    std::thread writer([&] {
      ThreadContext ti;
      for (int i = 0; i < kChurn; ++i) {
        uint64_t old;
        tree.insert("churn" + PaddedKey(i * 2654435761u % 100000000), i, &old, ti);
      }
      stop = true;
    });
    writer.join();
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(lost.load(), 0);
}

// Concurrent inserters over disjoint key ranges: every key must land.
TEST(TreeConcurrent, DisjointInserters) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t old;
        ASSERT_TRUE(tree.insert(PaddedKey(static_cast<uint64_t>(t) * kPerThread + i),
                                t * 1000000 + i, &old, ti));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      uint64_t v;
      ASSERT_TRUE(
          tree.get(PaddedKey(static_cast<uint64_t>(t) * kPerThread + i), &v, main_ti));
      ASSERT_EQ(v, static_cast<uint64_t>(t * 1000000 + i));
    }
  }
  TreeStats st = tree.collect_stats();
  EXPECT_EQ(st.keys, static_cast<uint64_t>(kThreads) * kPerThread);
}

// Concurrent inserters racing on the SAME keys: exactly one insert per key
// must win (return true).
TEST(TreeConcurrent, RacingInsertsSameKeys) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kKeys = 10000;
  std::atomic<int> wins{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      int my_wins = 0;
      for (int i = 0; i < kKeys; ++i) {
        uint64_t old;
        if (tree.insert(PaddedKey(i), 100 + t, &old, ti)) {
          ++my_wins;
        }
      }
      wins += my_wins;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(wins.load(), kKeys);
  for (int i = 0; i < kKeys; ++i) {
    uint64_t v;
    ASSERT_TRUE(tree.get(PaddedKey(i), &v, main_ti));
    ASSERT_TRUE(v >= 100 && v <= 102);
  }
}

// The §4.6.5 race: get(k1) vs remove(k1) + put(k2) reusing the slot. The get
// may return k1's old value (overlap) or not-found, but never k2's value.
TEST(TreeConcurrent, RemoveReinsertSlotReuse) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  // A handful of keys that share a border node.
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back("slot" + std::to_string(i));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> corruption{0};

  std::thread mutator([&] {
    ThreadContext ti;
    Rng rng(5);
    for (int round = 0; round < 30000; ++round) {
      const std::string& k = keys[rng.next_range(keys.size())];
      uint64_t old;
      // Value encodes the key index so readers can detect cross-talk.
      uint64_t idx = static_cast<uint64_t>(&k - &keys[0]);
      if (rng.next() & 1) {
        tree.insert(k, (idx << 32) | round, &old, ti);
      } else {
        tree.remove(k, &old, ti);
      }
    }
    stop = true;
  });
  std::thread reader([&] {
    ThreadContext ti;
    Rng rng(6);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t idx = rng.next_range(keys.size());
      uint64_t v;
      if (tree.get(keys[idx], &v, ti) && (v >> 32) != idx) {
        ++corruption;  // returned a value written for a different key
      }
    }
  });
  mutator.join();
  reader.join();
  EXPECT_EQ(corruption.load(), 0);
}

// Layer-creation race: one thread builds ever-deeper shared-prefix keys while
// readers hammer the conflicting fixed key. The fixed key must stay visible
// through the UNSTABLE->LAYER transition (§4.6.3).
TEST(TreeConcurrent, LayerCreationKeepsKeysVisible) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  const std::string anchor = "prefix00anchor";
  {
    uint64_t old;
    tree.insert(anchor, 777, &old, main_ti);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> lost{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      ThreadContext ti;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t v = 0;
        if (!tree.get(anchor, &v, ti) || v != 777) {
          ++lost;
        }
      }
    });
  }
  {
    ThreadContext ti;
    uint64_t old;
    // Each insert shares a progressively longer prefix with the anchor,
    // repeatedly forcing layer creation along the anchor's path.
    for (int i = 0; i < 5000; ++i) {
      std::string k = "prefix00" + std::string(i % 40, 'a') + std::to_string(i);
      tree.insert(k, i, &old, ti);
    }
  }
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(lost.load(), 0);
}

// Scans running against concurrent inserts must stay sorted, never
// duplicate, and always include keys present for the whole scan.
TEST(TreeConcurrent, ScanUnderChurn) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kStable = 3000;
  for (int i = 0; i < kStable; ++i) {
    uint64_t old;
    tree.insert("s" + PaddedKey(i), 1, &old, main_ti);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};

  std::thread scanner([&] {
    ThreadContext ti;
    while (!stop.load(std::memory_order_acquire)) {
      std::string last;
      int stable_seen = 0;
      bool first = true;
      tree.scan(
          "", 1u << 30,
          [&](std::string_view k, uint64_t) {
            if (!first && std::string_view(last) >= k) {
              ++errors;  // order violation or duplicate
            }
            last.assign(k);
            first = false;
            if (k.substr(0, 1) == "s") {
              ++stable_seen;
            }
            return true;
          },
          ti);
      if (stable_seen != kStable) {
        ++errors;  // lost a key that was present throughout
      }
    }
  });
  {
    ThreadContext ti;
    Rng rng(77);
    for (int i = 0; i < 20000; ++i) {
      uint64_t old;
      tree.insert("c" + PaddedKey(rng.next()), i, &old, ti);  // "c" < "s"
    }
  }
  stop = true;
  scanner.join();
  EXPECT_EQ(errors.load(), 0);
}

// Full mixed workload: inserts, updates, removes, gets, scans, and
// maintenance, all concurrent, with per-thread key ownership for exact
// validation.
TEST(TreeConcurrent, MixedWorkloadStress) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kThreads = 4;
  constexpr int kOps = 40000;
  constexpr int kSpace = 4000;  // keys per thread

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      Rng rng(31337 + t);
      // Shadow model of this thread's own keys (disjoint from others).
      std::vector<int64_t> mine(kSpace, -1);
      for (int op = 0; op < kOps; ++op) {
        uint64_t i = rng.next_range(kSpace);
        // Long keys with shared prefixes exercise multiple layers.
        std::string key = "worker" + std::to_string(t) + "/item/" + PaddedKey(i);
        int action = static_cast<int>(rng.next_range(10));
        uint64_t old;
        if (action < 5) {
          // Keep the top bit clear: the shadow model uses -1 as "absent".
          uint64_t v = (rng.next() >> 1) | 1;
          tree.insert(key, v, &old, ti);
          mine[i] = static_cast<int64_t>(v);
        } else if (action < 7) {
          bool removed = tree.remove(key, &old, ti);
          if (removed != (mine[i] >= 0)) {
            ++failures;
          }
          mine[i] = -1;
        } else {
          uint64_t v;
          bool found = tree.get(key, &v, ti);
          if (found != (mine[i] >= 0) ||
              (found && v != static_cast<uint64_t>(mine[i]))) {
            ++failures;
          }
        }
        if ((op & 8191) == 0) {
          tree.run_maintenance(ti);
        }
      }
      // Final verification of every owned key.
      for (int i = 0; i < kSpace; ++i) {
        std::string key = "worker" + std::to_string(t) + "/item/" + PaddedKey(i);
        uint64_t v;
        bool found = tree.get(key, &v, ti);
        if (found != (mine[i] >= 0) || (found && v != static_cast<uint64_t>(mine[i]))) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  tree.run_maintenance(main_ti);
}

// Node-deletion protocol: concurrent removals emptying whole subtrees while
// readers traverse. Forwarding pointers must always lead somewhere live.
TEST(TreeConcurrent, MassRemovalUnderReaders) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  constexpr int kKeys = 30000;
  for (int i = 0; i < kKeys; ++i) {
    uint64_t old;
    tree.insert(PaddedKey(i), i, &old, main_ti);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::thread reader([&] {
    ThreadContext ti;
    Rng rng(11);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t i = rng.next_range(kKeys);
      uint64_t v;
      if (tree.get(PaddedKey(i), &v, ti) && v != i) {
        ++wrong;
      }
    }
  });
  {
    std::vector<std::thread> removers;
    for (int t = 0; t < 2; ++t) {
      removers.emplace_back([&, t] {
        ThreadContext ti;
        for (int i = t; i < kKeys; i += 2) {
          uint64_t old;
          bool removed = tree.remove(PaddedKey(i), &old, ti);
          if (!removed || old != static_cast<uint64_t>(i)) {
            ++wrong;
          }
        }
      });
    }
    for (auto& th : removers) {
      th.join();
    }
  }
  stop = true;
  reader.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(tree.collect_stats().keys, 0u);
}

// §6.2's retry-rate observation: with concurrent inserts, split-caused
// retries from the root are orders of magnitude rarer than local retries.
TEST(TreeConcurrent, RetryRatesShape) {
  ThreadContext main_ti;
  Tree tree(main_ti);
  std::atomic<uint64_t> root_retries{0}, local_retries{0}, ops{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ti;
      Rng rng(t + 1);
      for (int i = 0; i < 50000; ++i) {
        uint64_t old;
        tree.insert(PaddedKey(rng.next_range(10000000)), i, &old, ti);
        uint64_t v;
        tree.get(PaddedKey(rng.next_range(10000000)), &v, ti);
      }
      root_retries += ti.counters().get(Counter::kGetRetryFromRoot);
      local_retries += ti.counters().get(Counter::kGetRetryLocal);
      ops += 100000;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Split retries from the root must be a tiny fraction of operations.
  EXPECT_LT(static_cast<double>(root_retries.load()),
            0.01 * static_cast<double>(ops.load()));
}

}  // namespace
}  // namespace masstree
